package nodefinder

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/enode"
	"repro/internal/metrics"
)

// dialScheduler is the central admission point of the sharded crawl
// pipeline. Discovery workers feed candidates into per-shard bounded
// queues (sharded by node ID, so one hot shard cannot starve the
// rest and queue memory is capped); a single scheduler dequeues
// round-robin across shards, enforcing the global concurrent-dial
// budget, the redial-suppression window, and the per-node exponential
// backoff — semantics identical to the pre-sharding Finder.
//
// The scheduler is not itself goroutine-safe: every method requires
// the Finder's lock (the *Locked suffix convention), which keeps the
// admission decisions serializable and the crawl deterministic under
// the simulated clock.
type dialScheduler struct {
	shards   []dialShard
	rr       int // round-robin cursor over shards
	queueCap int

	maxActive int
	active    int // in-flight dynamic dials

	// Per-node admission state, shared by the dynamic and static dial
	// paths.
	dialing  map[enode.ID]bool
	lastDial map[enode.ID]time.Time

	// failStreak counts consecutive failed establishment attempts per
	// node; backoffUntil holds the jittered instant before which the
	// node is not dynamically re-dialed. Both reset on any success.
	failStreak   map[enode.ID]int
	backoffUntil map[enode.ID]time.Time

	rng *rand.Rand
	m   *finderMetrics
}

// dialShard is one bounded FIFO of dial candidates. depth mirrors
// len(queue) as an atomic gauge so monitoring reads never touch the
// slice itself (which is guarded by the Finder's lock).
type dialShard struct {
	queue []*enode.Node
	depth *metrics.Gauge
}

// Sharded-pipeline defaults. One shard with an effectively unbounded
// queue reproduces the original single-queue Finder exactly; large
// worlds raise both via Config.
const (
	DefaultDialShards    = 1
	DefaultShardQueueCap = 4096
)

func newDialScheduler(shards, queueCap, maxActive int, rng *rand.Rand, m *finderMetrics, r *metrics.Registry) *dialScheduler {
	s := &dialScheduler{
		shards:       make([]dialShard, shards),
		queueCap:     queueCap,
		maxActive:    maxActive,
		dialing:      make(map[enode.ID]bool),
		lastDial:     make(map[enode.ID]time.Time),
		failStreak:   make(map[enode.ID]int),
		backoffUntil: make(map[enode.ID]time.Time),
		rng:          rng,
		m:            m,
	}
	for i := range s.shards {
		s.shards[i].depth = r.Gauge(fmt.Sprintf("finder.shard_depth{shard-%d}", i))
	}
	return s
}

// shardFor maps a node ID onto its queue. The first ID byte is
// uniformly distributed (IDs are hashes/public keys), so shards load
// evenly without extra hashing.
func (s *dialScheduler) shardFor(id enode.ID) *dialShard {
	return &s.shards[int(id[0])%len(s.shards)]
}

// admissibleLocked applies the per-node gates every dynamic dial must
// pass, in the original Finder's order: not already dialing, outside
// the redial-suppression window, outside the backoff window.
func (s *dialScheduler) admissibleLocked(id enode.ID, now time.Time) bool {
	if s.dialing[id] {
		return false
	}
	if last, ok := s.lastDial[id]; ok && now.Sub(last) < redialSuppression {
		return false
	}
	if until, ok := s.backoffUntil[id]; ok && now.Before(until) {
		s.m.backoffSkips.Inc()
		return false
	}
	return true
}

// enqueueLocked admits one discovered candidate into its shard queue.
// A full shard drops the candidate (and counts the drop): discovery
// keeps returning live nodes, so dropping is strictly cheaper than
// letting queues grow without bound during a population burst.
func (s *dialScheduler) enqueueLocked(n *enode.Node) bool {
	sh := s.shardFor(n.ID)
	if s.queueCap > 0 && len(sh.queue) >= s.queueCap {
		s.m.queueDropped.Inc()
		return false
	}
	sh.queue = append(sh.queue, n)
	sh.depth.Set(int64(len(sh.queue)))
	return true
}

// queuedLocked reports the total number of queued candidates.
func (s *dialScheduler) queuedLocked() int {
	total := 0
	for i := range s.shards {
		total += len(s.shards[i].queue)
	}
	return total
}

// fillLocked dequeues candidates round-robin across shards up to the
// concurrency budget, marks them in-flight, and returns the nodes the
// caller must launch after releasing the lock.
func (s *dialScheduler) fillLocked(now time.Time) []*enode.Node {
	var launch []*enode.Node
	empty := 0
	for s.active < s.maxActive && empty < len(s.shards) {
		sh := &s.shards[s.rr%len(s.shards)]
		s.rr++
		if len(sh.queue) == 0 {
			empty++
			continue
		}
		empty = 0
		n := sh.queue[0]
		sh.queue = sh.queue[1:]
		sh.depth.Set(int64(len(sh.queue)))
		if !s.admissibleLocked(n.ID, now) {
			continue
		}
		s.dialing[n.ID] = true
		s.lastDial[n.ID] = now
		s.active++
		launch = append(launch, n)
	}
	return launch
}

// beginStaticLocked marks a static dial in flight. Static dials are
// paced by their own 30-minute timers, not the dynamic budget, so
// they bypass the queues; the shared dialing map still prevents a
// dynamic/static double-dial.
func (s *dialScheduler) beginStaticLocked(id enode.ID, now time.Time) {
	s.dialing[id] = true
	s.lastDial[id] = now
}

// completeLocked records a finished outbound attempt and updates the
// backoff state: success resets the streak, failure doubles the
// suppression window (jittered, capped).
func (s *dialScheduler) completeLocked(id enode.ID, dynamic, success bool, now time.Time) {
	delete(s.dialing, id)
	s.lastDial[id] = now
	if dynamic {
		s.active--
	}
	if success {
		delete(s.failStreak, id)
		delete(s.backoffUntil, id)
	} else {
		s.failStreak[id]++
		s.backoffUntil[id] = now.Add(s.backoffDelayLocked(s.failStreak[id]))
	}
}

// backoffDelayLocked computes the jittered suppression window after
// the streak-th consecutive failure: redialSuppression doubled per
// failure beyond the first, capped at maxDialBackoff, with ±20%
// jitter so retries against a failing population do not synchronize.
func (s *dialScheduler) backoffDelayLocked(streak int) time.Duration {
	d := redialSuppression
	for i := 1; i < streak && d < maxDialBackoff; i++ {
		d *= 2
	}
	if d > maxDialBackoff {
		d = maxDialBackoff
	}
	return time.Duration(float64(d) * (0.8 + 0.4*s.rng.Float64()))
}

// pruneLocked drops backoff state for nodes whose window has been
// over for a full maxDialBackoff — long-quiet addresses the crawler
// may never hear about again — so §5.4-style identity spam cannot
// grow the failure maps without bound.
func (s *dialScheduler) pruneLocked(now time.Time) {
	for id, until := range s.backoffUntil {
		if now.Sub(until) > maxDialBackoff {
			delete(s.backoffUntil, id)
			delete(s.failStreak, id)
		}
	}
}
