package nodefinder

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/devp2p"
	"repro/internal/enode"
	"repro/internal/nodedb"
	"repro/internal/nodefinder/mlog"
	"repro/internal/simclock"
	"repro/internal/testutil/leakcheck"
)

var t0 = time.Date(2018, 4, 18, 0, 0, 0, 0, time.UTC)

// fakeWorld is a deterministic Discovery+Dialer over a simulated
// clock: lookups return a rotating subset of a fixed population, and
// dials succeed after a fixed virtual latency.
type fakeWorld struct {
	clock *simclock.Simulated
	self  enode.ID
	nodes []*enode.Node

	mu          sync.Mutex
	lookupCount int
	dialCount   map[mlog.ConnType]int
	perNodeDial map[enode.ID]int
	lookupSize  int
	dialLatency time.Duration
	failAll     bool
}

func newFakeWorld(clock *simclock.Simulated, n int) *fakeWorld {
	rng := rand.New(rand.NewSource(7))
	w := &fakeWorld{
		clock:       clock,
		self:        enode.RandomID(rng),
		dialCount:   map[mlog.ConnType]int{},
		perNodeDial: map[enode.ID]int{},
		lookupSize:  16,
		dialLatency: 150 * time.Millisecond,
	}
	for i := 0; i < n; i++ {
		w.nodes = append(w.nodes, enode.New(enode.RandomID(rng), net.IPv4(10, 1, byte(i>>8), byte(i)), 30303, 30303))
	}
	return w
}

func (w *fakeWorld) Self() enode.ID { return w.self }

func (w *fakeWorld) Lookup(target enode.ID, done func([]*enode.Node)) {
	w.mu.Lock()
	i := w.lookupCount
	w.lookupCount++
	var found []*enode.Node
	for j := 0; j < w.lookupSize && len(w.nodes) > 0; j++ {
		found = append(found, w.nodes[(i*w.lookupSize+j)%len(w.nodes)])
	}
	w.mu.Unlock()
	// Lookups take 1 virtual second.
	w.clock.AfterFunc(time.Second, func() { done(found) })
}

func (w *fakeWorld) Dial(n *enode.Node, kind mlog.ConnType, done func(*DialResult)) {
	w.mu.Lock()
	w.dialCount[kind]++
	w.perNodeDial[n.ID]++
	fail := w.failAll
	w.mu.Unlock()
	start := w.clock.Now()
	w.clock.AfterFunc(w.dialLatency, func() {
		res := &DialResult{Node: n, Kind: kind, Start: start, Duration: w.dialLatency, RTT: 40 * time.Millisecond}
		if fail {
			res.Err = fmt.Errorf("connection refused")
		} else {
			res.Hello = &devp2p.Hello{Version: 5, Name: "Geth/v1.8.11", Caps: []devp2p.Cap{{Name: "eth", Version: 63}}}
		}
		done(res)
	})
}

func newTestFinder(t *testing.T, clock *simclock.Simulated, w *fakeWorld, col *mlog.Collector) *Finder {
	t.Helper()
	f, err := New(Config{
		Clock:     clock,
		Discovery: w,
		Dialer:    w,
		DB:        nodedb.New(),
		Log:       col,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewValidatesConfig(t *testing.T) {
	leakcheck.Check(t)
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestDiscoveryCadence(t *testing.T) {
	leakcheck.Check(t)
	// Lookup rounds must start no closer than LookupInterval apart:
	// with 4s interval and 1s lookups, one hour holds ≤900 rounds —
	// and with our timings exactly 900.
	clock := simclock.NewSimulated(t0)
	w := newFakeWorld(clock, 0) // empty world: no dial activity
	f := newTestFinder(t, clock, w, mlog.NewCollector())
	f.Start()
	clock.Advance(time.Hour)
	st := f.Stats()
	if st.DiscoveryAttempts < 890 || st.DiscoveryAttempts > 901 {
		t.Fatalf("discovery attempts in 1h = %d, want ≈900", st.DiscoveryAttempts)
	}
	f.Stop()
}

func TestDynamicDialsFollowDiscovery(t *testing.T) {
	leakcheck.Check(t)
	clock := simclock.NewSimulated(t0)
	w := newFakeWorld(clock, 300)
	col := mlog.NewCollector()
	f := newTestFinder(t, clock, w, col)
	f.Start()
	clock.Advance(10 * time.Minute)
	f.Stop()

	st := f.Stats()
	if st.DynamicDials == 0 {
		t.Fatal("no dynamic dials")
	}
	if st.SuccessfulConns == 0 {
		t.Fatal("no successes")
	}
	// All 300 nodes should be known and static by now.
	if st.KnownNodes != 300 {
		t.Fatalf("known nodes %d", st.KnownNodes)
	}
	if st.StaticListSize != 300 {
		t.Fatalf("static list %d", st.StaticListSize)
	}
	// Log entries recorded for every dial.
	if col.Len() != int(st.DynamicDials+st.StaticDials) {
		t.Fatalf("log %d entries, dials %d", col.Len(), st.DynamicDials+st.StaticDials)
	}
}

func TestConcurrencyLimit(t *testing.T) {
	leakcheck.Check(t)
	// With slow dials (longer than the advance window between
	// checks), active dynamic dials must never exceed 16.
	clock := simclock.NewSimulated(t0)
	w := newFakeWorld(clock, 500)
	w.dialLatency = 20 * time.Second
	f := newTestFinder(t, clock, w, mlog.NewCollector())
	f.Start()
	for i := 0; i < 100; i++ {
		clock.Advance(time.Second)
		f.mu.Lock()
		active := f.sched.active
		f.mu.Unlock()
		if active > DefaultMaxDynamicDials {
			t.Fatalf("active dials %d > %d", active, DefaultMaxDynamicDials)
		}
	}
	f.Stop()
}

func TestStaticRedialInterval(t *testing.T) {
	leakcheck.Check(t)
	// A successfully dialed node must be re-dialed as static roughly
	// every 30 minutes: ≤48/day to a single node (§5.2 / Figure 8).
	clock := simclock.NewSimulated(t0)
	w := newFakeWorld(clock, 1)
	w.lookupSize = 1
	f := newTestFinder(t, clock, w, mlog.NewCollector())
	f.Start()
	clock.Advance(24 * time.Hour)
	f.Stop()

	w.mu.Lock()
	perNode := w.perNodeDial[w.nodes[0].ID]
	statics := w.dialCount[mlog.ConnStaticDial]
	w.mu.Unlock()
	if statics == 0 {
		t.Fatal("no static dials")
	}
	// 24h / 30min = 48 maximum static dials.
	if statics > 48 {
		t.Fatalf("static dials %d > 48/day", statics)
	}
	if statics < 40 {
		t.Fatalf("static dials %d, want ≈44-48", statics)
	}
	if perNode < statics {
		t.Fatalf("per-node dials %d < statics %d", perNode, statics)
	}
}

func TestBootstrapNodesAreStaticDialed(t *testing.T) {
	leakcheck.Check(t)
	clock := simclock.NewSimulated(t0)
	w := newFakeWorld(clock, 0)
	f := newTestFinder(t, clock, w, mlog.NewCollector())
	boot := enode.New(enode.RandomID(rand.New(rand.NewSource(9))), net.IPv4(192, 0, 2, 1), 30303, 30303)
	f.AddStatic(boot)
	f.Start()
	clock.Advance(2 * time.Hour)
	f.Stop()
	w.mu.Lock()
	dials := w.perNodeDial[boot.ID]
	w.mu.Unlock()
	if dials < 3 || dials > 4 {
		t.Fatalf("bootstrap static dials in 2h = %d, want 3-4", dials)
	}
}

func TestStaleNodesDropOffStaticList(t *testing.T) {
	leakcheck.Check(t)
	clock := simclock.NewSimulated(t0)
	w := newFakeWorld(clock, 10)
	f := newTestFinder(t, clock, w, mlog.NewCollector())
	f.Start()
	clock.Advance(30 * time.Minute) // populate
	if f.Stats().StaticListSize == 0 {
		t.Fatal("static list empty after warmup")
	}
	// Now all dials fail for >24h: nodes must be expired.
	w.mu.Lock()
	w.failAll = true
	w.mu.Unlock()
	clock.Advance(26 * time.Hour)
	if got := f.Stats().StaticListSize; got != 0 {
		t.Fatalf("static list still has %d entries after 26h of failures", got)
	}
	f.Stop()
}

func TestIncomingConnectionsLogged(t *testing.T) {
	leakcheck.Check(t)
	clock := simclock.NewSimulated(t0)
	w := newFakeWorld(clock, 1)
	col := mlog.NewCollector()
	f := newTestFinder(t, clock, w, col)
	reason := devp2p.DiscTooManyPeers
	f.HandleIncoming(&DialResult{
		Node:       w.nodes[0],
		Kind:       mlog.ConnIncoming,
		Start:      clock.Now(),
		Disconnect: &reason,
	})
	f.HandleIncoming(&DialResult{
		Node:  w.nodes[0],
		Kind:  mlog.ConnIncoming,
		Start: clock.Now(),
		Hello: &devp2p.Hello{Name: "Parity/v1.10.3"},
	})
	st := f.Stats()
	if st.IncomingConns != 2 || st.SuccessfulConns != 1 {
		t.Fatalf("stats %+v", st)
	}
	entries := col.Entries()
	if len(entries) != 2 {
		t.Fatalf("%d entries", len(entries))
	}
	if entries[0].DisconnectReason == nil || *entries[0].DisconnectReason != uint64(devp2p.DiscTooManyPeers) {
		t.Error("disconnect reason not logged")
	}
	if entries[1].Hello == nil || entries[1].Hello.ClientName != "Parity/v1.10.3" {
		t.Error("hello not logged")
	}
}

func TestStopHaltsScheduling(t *testing.T) {
	leakcheck.Check(t)
	clock := simclock.NewSimulated(t0)
	w := newFakeWorld(clock, 50)
	f := newTestFinder(t, clock, w, mlog.NewCollector())
	f.Start()
	clock.Advance(time.Minute)
	f.Stop()
	before := f.Stats().DiscoveryAttempts
	clock.Advance(time.Hour)
	after := f.Stats().DiscoveryAttempts
	// At most one in-flight round may complete after Stop.
	if after > before+1 {
		t.Fatalf("discovery continued after Stop: %d -> %d", before, after)
	}
}

func TestDeterministicUnderSimClock(t *testing.T) {
	leakcheck.Check(t)
	run := func() (Stats, int) {
		clock := simclock.NewSimulated(t0)
		w := newFakeWorld(clock, 120)
		col := mlog.NewCollector()
		f := newTestFinder(t, clock, w, col)
		f.Start()
		clock.Advance(20 * time.Minute)
		f.Stop()
		return f.Stats(), col.Len()
	}
	s1, n1 := run()
	s2, n2 := run()
	if s1.DynamicDials != s2.DynamicDials || s1.StaticDials != s2.StaticDials ||
		s1.DiscoveryAttempts != s2.DiscoveryAttempts || n1 != n2 {
		t.Fatalf("nondeterministic: %+v/%d vs %+v/%d", s1, n1, s2, n2)
	}
}
