package nodefinder

import (
	"fmt"
	"testing"

	"repro/internal/devp2p"
	"repro/internal/eth"
	"repro/internal/rlpx"
	"repro/internal/snappy"
)

// TestOutcomeClassCoversTransportSentinels is the runtime twin of the
// errtaxonomy lint contract: every exported sentinel a transport
// package can surface must map to its own taxonomy class, not the
// "error-other" catch-all — a sentinel landing there would silently
// merge a distinct failure mode into the census noise bucket. The
// sentinels are wrapped the way the dial path wraps them (fmt.Errorf
// with %w) to prove classification survives wrapping.
func TestOutcomeClassCoversTransportSentinels(t *testing.T) {
	cases := []struct {
		sentinel error
		want     string
	}{
		{rlpx.ErrBadHeaderMAC, "rlpx-bad-mac"},
		{rlpx.ErrBadFrameMAC, "rlpx-bad-mac"},
		{rlpx.ErrFrameTooBig, "frame-oversize"},
		{rlpx.ErrBadHandshake, "rlpx-bad-handshake"},
		{devp2p.ErrUnexpectedMessage, "protocol-violation"},
		{devp2p.ErrNoCommonProtocol, "no-common-caps"},
		{devp2p.ErrMsgTooBig, "msg-oversize"},
		{eth.ErrNetworkMismatch, "status-mismatch"},
		{eth.ErrGenesisMismatch, "status-mismatch"},
		{eth.ErrProtocolMismatch, "status-mismatch"},
		{eth.ErrNoStatus, "protocol-violation"},
		{eth.ErrMsgTooBig, "msg-oversize"},
		{snappy.ErrCorrupt, "snappy-corrupt"},
		{snappy.ErrTooLarge, "snappy-corrupt"},
	}
	for _, tc := range cases {
		t.Run(tc.sentinel.Error(), func(t *testing.T) {
			res := &DialResult{Err: fmt.Errorf("handshake stage: %w", tc.sentinel)}
			got := OutcomeClass(res)
			if got != tc.want {
				t.Errorf("OutcomeClass(%v) = %q, want %q", tc.sentinel, got, tc.want)
			}
			if got == "error-other" {
				t.Errorf("sentinel %v fell into the catch-all bucket", tc.sentinel)
			}
		})
	}
}

// TestOutcomeClassNonErrorStates pins the classifier's non-error
// outcomes so taxonomy extensions cannot reshuffle them.
func TestOutcomeClassNonErrorStates(t *testing.T) {
	tooMany := devp2p.DiscTooManyPeers
	requested := devp2p.DiscRequested
	cases := []struct {
		name string
		res  *DialResult
		want string
	}{
		{"too-many-peers", &DialResult{Disconnect: &tooMany}, "too-many-peers"},
		{"disconnected", &DialResult{Disconnect: &requested}, "disconnected"},
		{"eth-handshake", &DialResult{Hello: &devp2p.Hello{}, Status: &eth.Status{}}, "eth-handshake"},
		{"hello-no-eth", &DialResult{Hello: &devp2p.Hello{}}, "hello-no-eth"},
		{"no-handshake", &DialResult{}, "no-handshake"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := OutcomeClass(tc.res); got != tc.want {
				t.Errorf("OutcomeClass = %q, want %q", got, tc.want)
			}
		})
	}
}
