package mlog

import (
	"fmt"
	"sync"
	"testing"
)

// TestBatcherDrainsInOrder: everything recorded before Close reaches
// the underlying sink, in arrival order.
func TestBatcherDrainsInOrder(t *testing.T) {
	col := NewCollector()
	b := NewBatcher(col)
	const n = 5000
	for i := 0; i < n; i++ {
		b.Record(&Entry{NodeID: fmt.Sprintf("node-%06d", i)})
	}
	b.Close()
	got := col.Entries()
	if len(got) != n {
		t.Fatalf("flushed %d entries, want %d", len(got), n)
	}
	for i, e := range got {
		if want := fmt.Sprintf("node-%06d", i); e.NodeID != want {
			t.Fatalf("entry %d out of order: got %s want %s", i, e.NodeID, want)
		}
	}
}

// TestBatcherConcurrentRecord: concurrent recorders race the flusher
// without loss (run under -race in CI).
func TestBatcherConcurrentRecord(t *testing.T) {
	col := NewCollector()
	b := NewBatcher(col)
	const writers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				b.Record(&Entry{NodeID: fmt.Sprintf("w%d-%d", w, i)})
			}
		}(w)
	}
	wg.Wait()
	b.Close()
	if got := col.Len(); got != writers*per {
		t.Fatalf("flushed %d entries, want %d", got, writers*per)
	}
	if b.Pending() != 0 {
		t.Fatalf("pending %d after Close", b.Pending())
	}
}

// TestBatcherCloseIdempotent: double Close neither panics nor hangs,
// and records after Close are dropped rather than leaking a buffer.
func TestBatcherCloseIdempotent(t *testing.T) {
	col := NewCollector()
	b := NewBatcher(col)
	b.Record(&Entry{NodeID: "a"})
	b.Close()
	b.Record(&Entry{NodeID: "late"})
	b.Close()
	if got := col.Len(); got != 1 {
		t.Fatalf("flushed %d entries, want 1", got)
	}
}
