package mlog

import "sync"

// Batcher is a Sink decorator that takes record construction off the
// dial path. Record only appends to an in-memory buffer under a
// mutex; a single background goroutine drains the buffer into the
// underlying sink (typically a JSON Writer) in batches. At 100k-node
// crawl rates the JSON encode + write of a synchronous Writer
// dominates the dial callback; batching moves that cost off the
// Finder's scheduling path entirely.
//
// Ordering is preserved: the flusher drains whole buffers in arrival
// order, and Close hands back only after everything recorded before
// the call has reached the underlying sink. No timers are involved —
// the flusher wakes on a condition variable whenever the buffer is
// non-empty, so the Batcher is safe to use under the simulated clock.
type Batcher struct {
	sink Sink

	mu     sync.Mutex
	cond   *sync.Cond
	buf    []*Entry
	closed bool
	done   chan struct{}
}

// NewBatcher wraps sink with an asynchronous buffer and starts the
// flusher goroutine. Callers must Close the Batcher to drain it.
func NewBatcher(sink Sink) *Batcher {
	b := &Batcher{sink: sink, done: make(chan struct{})}
	b.cond = sync.NewCond(&b.mu)
	go b.flushLoop()
	return b
}

// Record implements Sink. It never blocks on the underlying sink.
// Records after Close are dropped (the crawler is shutting down).
func (b *Batcher) Record(e *Entry) {
	b.mu.Lock()
	if !b.closed {
		b.buf = append(b.buf, e)
		b.cond.Signal()
	}
	b.mu.Unlock()
}

// Pending returns the number of buffered, not-yet-flushed entries.
func (b *Batcher) Pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.buf)
}

// Close drains every buffered entry into the underlying sink, stops
// the flusher goroutine, and returns. Safe to call once.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		<-b.done
		return
	}
	b.closed = true
	b.cond.Signal()
	b.mu.Unlock()
	<-b.done
}

// flushLoop swaps the shared buffer for an empty one and writes the
// batch outside the lock, so recorders are never blocked by the
// underlying sink's encode/write latency.
func (b *Batcher) flushLoop() {
	defer close(b.done)
	for {
		b.mu.Lock()
		for len(b.buf) == 0 && !b.closed {
			b.cond.Wait()
		}
		batch := b.buf
		b.buf = nil
		closed := b.closed
		b.mu.Unlock()

		for _, e := range batch {
			b.sink.Record(e)
		}
		if closed {
			b.mu.Lock()
			rest := b.buf
			b.buf = nil
			b.mu.Unlock()
			for _, e := range rest {
				b.sink.Record(e)
			}
			return
		}
	}
}
