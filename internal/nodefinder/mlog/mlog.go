// Package mlog defines NodeFinder's measurement log: the structured
// records the paper's analyses are computed from.
//
// The paper co-opts Geth's logging to record, for every peer
// connection: a timestamp, the peer's node ID, IP, port, connection
// type (dynamic-dial, static-dial, or incoming), connection latency,
// and duration — followed by the decoded HELLO, STATUS, DISCONNECT,
// and DAO-fork-check results (§4). Entries here carry exactly that,
// serialized as JSON lines.
package mlog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// ConnType is how the connection was made.
type ConnType string

// Connection types (§4).
const (
	ConnDynamicDial ConnType = "dynamic-dial"
	ConnStaticDial  ConnType = "static-dial"
	ConnIncoming    ConnType = "incoming"
)

// HelloInfo is the decoded DEVp2p HELLO content.
type HelloInfo struct {
	Version    uint64   `json:"version"`
	ClientName string   `json:"clientName"`
	Caps       []string `json:"caps"`
	ListenPort uint64   `json:"listenPort"`
}

// StatusInfo is the decoded eth STATUS content.
type StatusInfo struct {
	ProtocolVersion uint32 `json:"protocolVersion"`
	NetworkID       uint64 `json:"networkID"`
	TD              string `json:"td"`
	BestHash        string `json:"bestHash"`
	GenesisHash     string `json:"genesisHash"`
	// BestBlock is the block number corresponding to BestHash when
	// the serving node reveals it (simulation convenience; the paper
	// recovers numbers by resolving hashes against its own chain).
	BestBlock uint64 `json:"bestBlock,omitempty"`
}

// Entry is one peer-connection record.
type Entry struct {
	Time     time.Time `json:"time"`
	NodeID   string    `json:"nodeID"`
	IP       string    `json:"ip"`
	Port     uint16    `json:"port"`
	ConnType ConnType  `json:"connType"`
	// LatencyUS is the smoothed RTT estimate in microseconds.
	LatencyUS int64 `json:"latencyUS"`
	// DurationUS is how long the connection was held.
	DurationUS int64 `json:"durationUS"`

	Err              string      `json:"err,omitempty"`
	Hello            *HelloInfo  `json:"hello,omitempty"`
	Status           *StatusInfo `json:"status,omitempty"`
	DisconnectReason *uint64     `json:"disconnectReason,omitempty"`
	// DAOFork is "", "supported", "opposed", or "unknown".
	DAOFork string `json:"daoFork,omitempty"`
}

// Latency returns the latency as a duration.
func (e *Entry) Latency() time.Duration { return time.Duration(e.LatencyUS) * time.Microsecond }

// Duration returns the connection duration.
func (e *Entry) Duration() time.Duration { return time.Duration(e.DurationUS) * time.Microsecond }

// Succeeded reports whether the DEVp2p handshake completed (a HELLO
// was received) — the paper's criterion for a "responding" node.
func (e *Entry) Succeeded() bool { return e.Hello != nil }

// Sink receives log entries.
type Sink interface {
	Record(e *Entry)
}

// Collector is an in-memory Sink for experiments.
type Collector struct {
	mu      sync.Mutex
	entries []*Entry
}

// NewCollector creates an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Record implements Sink.
func (c *Collector) Record(e *Entry) {
	c.mu.Lock()
	c.entries = append(c.entries, e)
	c.mu.Unlock()
}

// Entries returns a snapshot of all recorded entries.
func (c *Collector) Entries() []*Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Entry, len(c.entries))
	copy(out, c.entries)
	return out
}

// Len returns the number of entries recorded.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Writer is a Sink that streams JSON lines to an io.Writer.
type Writer struct {
	mu  sync.Mutex
	w   *bufio.Writer
	enc *json.Encoder
}

// NewWriter wraps w as a JSONL sink.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{w: bw, enc: json.NewEncoder(bw)}
}

// Record implements Sink. Encoding errors are deliberately dropped;
// measurement must not crash the crawler.
func (w *Writer) Record(e *Entry) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.enc.Encode(e) //nolint:errcheck
}

// Flush drains buffered output.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.w.Flush()
}

// Tee fans entries out to several sinks.
type Tee []Sink

// Record implements Sink.
func (t Tee) Record(e *Entry) {
	for _, s := range t {
		s.Record(e)
	}
}

// ReadFile loads a JSONL log file.
func ReadFile(path string) ([]*Entry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("mlog: %w", err)
	}
	defer f.Close()
	return Read(f)
}

// Read parses JSONL entries from r. A measurement log is often cut
// short by a crash or disk-full event — a truncated final line or a
// stretch of interleaved garbage must not cost the analyst the 82
// days of records before it. Read therefore parses as far as it can:
// it always returns every entry that decoded cleanly, together with
// an error describing the first malformed line (nil if the whole
// stream was well-formed). A caller that requires a pristine log
// checks the error; the analysis pipeline keeps the partial records.
func Read(r io.Reader) ([]*Entry, error) {
	var out []*Entry
	var firstErr error
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("mlog: line %d: %w", line, err)
			}
			continue
		}
		out = append(out, &e)
	}
	if err := sc.Err(); err != nil && firstErr == nil {
		firstErr = fmt.Errorf("mlog: scan: %w", err)
	}
	return out, firstErr
}
