package mlog

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func sampleEntry(i int) *Entry {
	r := uint64(4)
	return &Entry{
		Time:       time.Date(2018, 4, 18, 0, 0, i, 0, time.UTC),
		NodeID:     "abcd",
		IP:         "10.0.0.1",
		Port:       30303,
		ConnType:   ConnDynamicDial,
		LatencyUS:  42000,
		DurationUS: 900000,
		Hello: &HelloInfo{
			Version:    5,
			ClientName: "Geth/v1.8.11-stable/linux-amd64/go1.10",
			Caps:       []string{"eth/62", "eth/63"},
			ListenPort: 30303,
		},
		Status: &StatusInfo{
			ProtocolVersion: 63,
			NetworkID:       1,
			TD:              "123456",
			BestHash:        "aa",
			GenesisHash:     "d4e5",
			BestBlock:       5500000,
		},
		DisconnectReason: &r,
		DAOFork:          "supported",
	}
}

func TestWriterReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 5; i++ {
		w.Record(sampleEntry(i))
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	entries, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 {
		t.Fatalf("%d entries", len(entries))
	}
	e := entries[0]
	if e.Hello.ClientName != "Geth/v1.8.11-stable/linux-amd64/go1.10" {
		t.Error("client name lost")
	}
	if e.Status.NetworkID != 1 || e.Status.BestBlock != 5500000 {
		t.Error("status lost")
	}
	if e.DisconnectReason == nil || *e.DisconnectReason != 4 {
		t.Error("disconnect lost")
	}
	if e.Latency() != 42*time.Millisecond {
		t.Errorf("latency %v", e.Latency())
	}
	if e.Duration() != 900*time.Millisecond {
		t.Errorf("duration %v", e.Duration())
	}
	if !e.Succeeded() {
		t.Error("succeeded wrong")
	}
}

func TestReadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f)
	w.Record(sampleEntry(0))
	w.Flush()
	f.Close()

	entries, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("%d entries", len(entries))
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope.jsonl")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewBufferString("{not json}\n")); err == nil {
		t.Error("garbage accepted")
	}
}

// validLine renders one sample entry as a JSONL line.
func validLine(t *testing.T, i int) string {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Record(sampleEntry(i))
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestReadCorruptInputs is the crash-recovery contract: whatever has
// happened to the log on disk — truncation mid-line, interleaved
// stderr garbage, binary junk, an empty file — Read returns every
// record that survived plus a non-nil error for any damage, and
// never panics.
func TestReadCorruptInputs(t *testing.T) {
	l0, l1 := validLine(t, 0), validLine(t, 1)
	cases := []struct {
		name    string
		input   string
		want    int  // entries recovered
		wantErr bool // damage reported
	}{
		{"empty file", "", 0, false},
		{"only newlines", "\n\n\n", 0, false},
		{"truncated final line", l0 + l1[:len(l1)/2], 1, true},
		{"truncated only line", l0[:len(l0)-20], 0, true},
		{"garbage between records", l0 + "##### panic: runtime error #####\n" + l1, 2, true},
		{"garbage then records", "\x00\x01\x02binary junk\n" + l0 + l1, 2, true},
		{"records then garbage", l0 + l1 + "{\"time\": not-a-date}\n", 2, true},
		{"all garbage", "one\ntwo\nthree\n", 0, true},
		{"valid json wrong shape", "[1,2,3]\n" + l0, 1, true},
		{"missing trailing newline", l0 + l1[:len(l1)-1], 2, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			entries, err := Read(bytes.NewBufferString(tc.input))
			if len(entries) != tc.want {
				t.Errorf("recovered %d entries, want %d", len(entries), tc.want)
			}
			if (err != nil) != tc.wantErr {
				t.Errorf("err = %v, wantErr = %v", err, tc.wantErr)
			}
			for _, e := range entries {
				if e.NodeID != "abcd" {
					t.Errorf("recovered entry corrupted: %+v", e)
				}
			}
		})
	}
}

// TestReadPartialThenError pins the pairing: damaged input yields
// BOTH the salvageable records and the first error, so callers can
// choose strictness without losing data.
func TestReadPartialThenError(t *testing.T) {
	l0 := validLine(t, 0)
	input := l0 + l0 + "corrupt{{{\n" + l0
	entries, err := Read(bytes.NewBufferString(input))
	if err == nil {
		t.Fatal("damage not reported")
	}
	if len(entries) != 3 {
		t.Fatalf("recovered %d entries, want 3 (records after the bad line count too)", len(entries))
	}
}

func TestReadSkipsBlankLines(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Record(sampleEntry(0))
	w.Flush()
	buf.WriteString("\n\n")
	entries, err := Read(&buf)
	if err != nil || len(entries) != 1 {
		t.Fatal(err, len(entries))
	}
}

func TestCollector(t *testing.T) {
	c := NewCollector()
	c.Record(sampleEntry(0))
	c.Record(sampleEntry(1))
	if c.Len() != 2 {
		t.Fatal("len")
	}
	snap := c.Entries()
	c.Record(sampleEntry(2))
	if len(snap) != 2 {
		t.Fatal("snapshot not stable")
	}
}

func TestTee(t *testing.T) {
	a, b := NewCollector(), NewCollector()
	tee := Tee{a, b}
	tee.Record(sampleEntry(0))
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatal("tee did not fan out")
	}
}

func TestSucceededFalseWithoutHello(t *testing.T) {
	e := &Entry{Err: "connection refused"}
	if e.Succeeded() {
		t.Fatal("failure counted as success")
	}
}
