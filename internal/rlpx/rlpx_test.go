package rlpx

import (
	"bytes"
	"errors"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/crypto/secp256k1"
	"repro/internal/enode"
	"repro/internal/testutil/leakcheck"
)

func testKey(t testing.TB, seed int64) *secp256k1.PrivateKey {
	t.Helper()
	k, err := secp256k1.GenerateKey(rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// handshakePair runs both handshake sides over an in-memory pipe.
func handshakePair(t *testing.T, initKey, recipKey *secp256k1.PrivateKey) (*Conn, *Conn) {
	t.Helper()
	c1, c2 := net.Pipe()
	recipID := enode.PubkeyID(&recipKey.Pub)

	var (
		wg        sync.WaitGroup
		initConn  *Conn
		recipConn *Conn
		initErr   error
		recipErr  error
	)
	wg.Add(2)
	go func() {
		defer wg.Done()
		initConn, initErr = Initiate(c1, initKey, recipID)
		if initErr != nil {
			c1.Close() // unblock the other side on failure
		}
	}()
	go func() {
		defer wg.Done()
		recipConn, recipErr = Accept(c2, recipKey)
		if recipErr != nil {
			c2.Close()
		}
	}()
	wg.Wait()
	if initErr != nil {
		t.Fatalf("initiator: %v", initErr)
	}
	if recipErr != nil {
		t.Fatalf("recipient: %v", recipErr)
	}
	t.Cleanup(func() { initConn.Close(); recipConn.Close() })
	return initConn, recipConn
}

func TestHandshakeIdentities(t *testing.T) {
	leakcheck.Check(t)
	initKey, recipKey := testKey(t, 1), testKey(t, 2)
	ic, rc := handshakePair(t, initKey, recipKey)
	if ic.RemoteID() != enode.PubkeyID(&recipKey.Pub) {
		t.Error("initiator learned wrong recipient ID")
	}
	if rc.RemoteID() != enode.PubkeyID(&initKey.Pub) {
		t.Error("recipient learned wrong initiator ID")
	}
}

func TestMessageExchange(t *testing.T) {
	leakcheck.Check(t)
	ic, rc := handshakePair(t, testKey(t, 3), testKey(t, 4))
	ic.SetTimeouts(2*time.Second, 2*time.Second)
	rc.SetTimeouts(2*time.Second, 2*time.Second)

	done := make(chan error, 1)
	go func() {
		code, payload, err := rc.ReadMsg()
		if err != nil {
			done <- err
			return
		}
		if code != 0x10 || !bytes.Equal(payload, []byte{0xC1, 0x05}) {
			t.Errorf("got code %#x payload %x", code, payload)
		}
		done <- rc.WriteMsg(0x11, []byte{0xC0})
	}()
	if err := ic.WriteMsg(0x10, []byte{0xC1, 0x05}); err != nil {
		t.Fatal(err)
	}
	code, payload, err := ic.ReadMsg()
	if err != nil {
		t.Fatal(err)
	}
	if code != 0x11 || !bytes.Equal(payload, []byte{0xC0}) {
		t.Fatalf("reply code %#x payload %x", code, payload)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestManyMessagesBothDirections(t *testing.T) {
	leakcheck.Check(t)
	// The CTR keystream and rolling MACs must stay in sync over a
	// long exchange with varied sizes.
	ic, rc := handshakePair(t, testKey(t, 5), testKey(t, 6))
	ic.SetTimeouts(5*time.Second, 5*time.Second)
	rc.SetTimeouts(5*time.Second, 5*time.Second)

	rng := rand.New(rand.NewSource(7))
	const rounds = 60
	var wg sync.WaitGroup
	wg.Add(1)
	errs := make(chan error, rounds*2+1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			code, payload, err := rc.ReadMsg()
			if err != nil {
				errs <- err
				return
			}
			if err := rc.WriteMsg(code+1, payload); err != nil {
				errs <- err
				return
			}
		}
	}()
	for i := 0; i < rounds; i++ {
		payload := make([]byte, rng.Intn(3000))
		rng.Read(payload)
		if err := ic.WriteMsg(uint64(i), payload); err != nil {
			t.Fatal(err)
		}
		code, echo, err := ic.ReadMsg()
		if err != nil {
			t.Fatal(err)
		}
		if code != uint64(i)+1 || !bytes.Equal(echo, payload) {
			t.Fatalf("round %d: bad echo (code %d, %d bytes)", i, code, len(echo))
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestHandshakeWrongRecipientKey(t *testing.T) {
	leakcheck.Check(t)
	// Initiator expects identity A but the listener holds key B: the
	// ECIES decryption fails on the listener side and the initiator
	// errors out.
	initKey, realKey, claimedKey := testKey(t, 8), testKey(t, 9), testKey(t, 10)
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()

	go func() {
		Accept(c2, realKey) //nolint:errcheck // must fail; error checked via initiator
		c2.Close()
	}()
	_, err := Initiate(c1, initKey, enode.PubkeyID(&claimedKey.Pub))
	if err == nil {
		t.Fatal("handshake with wrong identity succeeded")
	}
}

func TestFrameTamperingDetected(t *testing.T) {
	leakcheck.Check(t)
	// A bit flipped on the wire must break the frame MAC.
	initKey, recipKey := testKey(t, 11), testKey(t, 12)
	c1, c2 := net.Pipe()
	// Closing both ends unblocks the garbage writer below: the reader
	// consumes only the frame header before failing its MAC check, so
	// the unbuffered pipe would otherwise pin the writer forever.
	defer c1.Close()
	defer c2.Close()
	recipID := enode.PubkeyID(&recipKey.Pub)

	// tamperConn flips a bit in the first frame after the handshake.
	var ic *Conn
	var initErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ic, initErr = Initiate(c1, initKey, recipID)
	}()
	rc, err := Accept(c2, recipKey)
	wg.Wait()
	if err != nil || initErr != nil {
		t.Fatal(err, initErr)
	}
	ic.SetTimeouts(2*time.Second, 2*time.Second)
	rc.SetTimeouts(2*time.Second, 2*time.Second)

	go func() {
		// Write a message, manually corrupting it by writing through
		// the raw pipe afterwards is impossible; instead corrupt by
		// breaking MAC sync: write garbage straight to the fd.
		c1.Write(make([]byte, 48))
	}()
	if _, _, err := rc.ReadMsg(); err == nil {
		t.Fatal("garbage frame accepted")
	}
}

func TestOverLoopbackTCP(t *testing.T) {
	leakcheck.Check(t)
	// Full handshake + messaging over a real TCP socket.
	initKey, recipKey := testKey(t, 13), testKey(t, 14)
	ln, err := net.Listen("tcp4", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	acceptErr := make(chan error, 1)
	go func() {
		fd, err := ln.Accept()
		if err != nil {
			acceptErr <- err
			return
		}
		conn, err := Accept(fd, recipKey)
		if err != nil {
			acceptErr <- err
			return
		}
		defer conn.Close()
		code, payload, err := conn.ReadMsg()
		if err != nil {
			acceptErr <- err
			return
		}
		acceptErr <- conn.WriteMsg(code, payload)
	}()

	fd, err := net.Dial("tcp4", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn, err := Initiate(fd, initKey, enode.PubkeyID(&recipKey.Pub))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.WriteMsg(7, []byte{0xC1, 0x2A}); err != nil {
		t.Fatal(err)
	}
	code, payload, err := conn.ReadMsg()
	if err != nil {
		t.Fatal(err)
	}
	if code != 7 || !bytes.Equal(payload, []byte{0xC1, 0x2A}) {
		t.Fatalf("echo mismatch: %d %x", code, payload)
	}
	if err := <-acceptErr; err != nil {
		t.Fatal(err)
	}
}

func TestRTTAccessors(t *testing.T) {
	leakcheck.Check(t)
	ic, _ := handshakePair(t, testKey(t, 15), testKey(t, 16))
	if ic.SmoothedRTT() != 0 {
		t.Error("initial RTT not zero")
	}
	ic.SetRTT(42 * time.Millisecond)
	if ic.SmoothedRTT() != 42*time.Millisecond {
		t.Error("RTT not stored")
	}
}

func BenchmarkFrameRoundTrip(b *testing.B) {
	initKey, recipKey := testKey(b, 20), testKey(b, 21)
	c1, c2 := net.Pipe()
	recipID := enode.PubkeyID(&recipKey.Pub)
	var ic, rc *Conn
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ic, _ = Initiate(c1, initKey, recipID)
	}()
	rc, err := Accept(c2, recipKey)
	if err != nil {
		b.Fatal(err)
	}
	wg.Wait()
	ic.SetTimeouts(0, 0)
	rc.SetTimeouts(0, 0)
	go func() {
		for {
			code, payload, err := rc.ReadMsg()
			if err != nil {
				return
			}
			rc.WriteMsg(code, payload)
		}
	}()
	payload := make([]byte, 256)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := ic.WriteMsg(1, payload); err != nil {
			b.Fatal(err)
		}
		if _, _, err := ic.ReadMsg(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	ic.Close()
	rc.Close()
}

// TestGiantFrameFailsFast pins the hardened read path's contract: a
// header advertising the maximum encodable frame (0xFFFFFF bytes,
// ~16 MiB) is rejected from the 32 header bytes alone — before the
// frame buffer is allocated and before any body bytes are read. The
// attacker sends ONLY the header; if the reader tried to read the
// body it would block forever on the in-memory pipe rather than fail.
func TestGiantFrameFailsFast(t *testing.T) {
	leakcheck.Check(t)
	initKey, recipKey := testKey(t, 20), testKey(t, 21)
	ic, rc := handshakePair(t, initKey, recipKey)

	// Hand-craft a valid (correctly encrypted and MAC'd) header using
	// the initiator's egress state, claiming a 16 MiB frame.
	var header [16]byte
	header[0], header[1], header[2] = 0xFF, 0xFF, 0xFF
	copy(header[3:], zeroHeader)
	ic.rw.enc.XORKeyStream(header[:], header[:])
	var wire [32]byte
	copy(wire[:16], header[:])
	copy(wire[16:], ic.rw.em.computeHeaderMAC(header[:]))

	writeDone := make(chan error, 1)
	go func() {
		_, err := ic.fd.Write(wire[:])
		writeDone <- err
	}()

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	_, _, err := rc.ReadMsg()
	runtime.ReadMemStats(&after)

	if !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("err = %v, want ErrFrameTooBig", err)
	}
	if werr := <-writeDone; werr != nil {
		t.Fatalf("header write: %v", werr)
	}
	// The reject path may allocate error strings and scanner scratch,
	// but never anything on the order of the advertised frame.
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 1<<20 {
		t.Fatalf("reader allocated %d bytes for a frame it rejected from the header", grew)
	}
}

// TestMaxReadFrameConfigurable checks the cap is tunable per
// connection: a payload legal under the default 1 MiB cap fails once
// the receiver lowers its cap below the payload size, and the error
// is the taxonomy's ErrFrameTooBig.
func TestMaxReadFrameConfigurable(t *testing.T) {
	leakcheck.Check(t)
	initKey, recipKey := testKey(t, 22), testKey(t, 23)
	ic, rc := handshakePair(t, initKey, recipKey)

	rc.SetMaxReadFrame(4096)
	payload := bytes.Repeat([]byte{0x55}, 8192)
	writeDone := make(chan error, 1)
	go func() {
		writeDone <- ic.WriteMsg(0x10, payload)
	}()
	_, _, err := rc.ReadMsg()
	if !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("err = %v, want ErrFrameTooBig", err)
	}
	// Unblock the writer (the pipe is unbuffered and the reader
	// stopped at the header).
	rc.Close()
	ic.Close()
	<-writeDone
}
