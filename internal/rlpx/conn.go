package rlpx

import (
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/crypto/secp256k1"
	"repro/internal/enode"
	"repro/internal/rlp"
	"repro/internal/snappy"
)

// Timeouts matching the Geth constants the paper lists in §4.
const (
	// FrameReadTimeout bounds a single message read.
	FrameReadTimeout = 30 * time.Second
	// FrameWriteTimeout bounds a single message write.
	FrameWriteTimeout = 20 * time.Second
	// HandshakeTimeout bounds the whole auth/ack key exchange. A peer
	// that connects and never completes (or never starts) the
	// handshake is cut off here instead of pinning a goroutine and a
	// socket forever.
	HandshakeTimeout = 5 * time.Second
)

// DefaultMaxReadFrame bounds inbound frame payloads (and, with snappy
// enabled, the decompressed payload). The devp2p base protocol and
// the eth subset this repository speaks never legitimately approach
// it; a peer advertising more in a frame header is cut off before the
// frame buffer is allocated. Callers that really expect bigger
// messages raise it per connection with SetMaxReadFrame, up to the
// absolute MaxFrameSize.
const DefaultMaxReadFrame = 1 << 20

// Conn is an established RLPx connection carrying framed messages.
// Option fields (timeouts, snappy, RTT) may be set from a different
// goroutine than the reader/writer and are therefore atomic; the
// frame reader and writer themselves must each be used from at most
// one goroutine at a time.
type Conn struct {
	fd       net.Conn
	rw       *frameRW
	remoteID enode.ID

	// pbuf is the WriteMsgValue payload scratch. Like the frame
	// buffers in frameRW it is owned by the single writer goroutine
	// and reused across messages.
	pbuf []byte

	readTimeout  atomic.Int64 // nanoseconds; 0 disables
	writeTimeout atomic.Int64
	rtt          atomic.Int64
	maxReadFrame atomic.Int64
	snappy       atomic.Bool
}

// Initiate performs the initiator handshake over an established TCP
// connection toward the node with the given identity, bounded by
// HandshakeTimeout.
func Initiate(fd net.Conn, priv *secp256k1.PrivateKey, remoteID enode.ID) (*Conn, error) {
	return InitiateTimeout(fd, priv, remoteID, HandshakeTimeout)
}

// InitiateTimeout is Initiate with an explicit handshake deadline
// (zero disables it — the caller manages fd deadlines itself).
func InitiateTimeout(fd net.Conn, priv *secp256k1.PrivateKey, remoteID enode.ID, timeout time.Duration) (*Conn, error) {
	armHandshakeDeadline(fd, timeout)
	sec, err := initiatorHandshake(fd, priv, remoteID)
	countHandshake(err)
	if err != nil {
		return nil, err
	}
	clearHandshakeDeadline(fd, timeout)
	return newConn(fd, sec), nil
}

// Accept performs the recipient handshake on an inbound connection
// and learns the initiator's identity, bounded by HandshakeTimeout. A
// client that opens a socket and never sends auth ("never-ACK") is
// disconnected when the deadline fires.
func Accept(fd net.Conn, priv *secp256k1.PrivateKey) (*Conn, error) {
	return AcceptTimeout(fd, priv, HandshakeTimeout)
}

// AcceptTimeout is Accept with an explicit handshake deadline (zero
// disables it).
func AcceptTimeout(fd net.Conn, priv *secp256k1.PrivateKey, timeout time.Duration) (*Conn, error) {
	armHandshakeDeadline(fd, timeout)
	sec, err := recipientHandshake(fd, priv)
	countHandshake(err)
	if err != nil {
		return nil, err
	}
	clearHandshakeDeadline(fd, timeout)
	return newConn(fd, sec), nil
}

func armHandshakeDeadline(fd net.Conn, timeout time.Duration) {
	if timeout > 0 {
		//lint:ignore wallclock socket deadlines are absolute wall-clock instants the kernel compares against real time
		fd.SetDeadline(time.Now().Add(timeout)) //nolint:errcheck
	}
}

func clearHandshakeDeadline(fd net.Conn, timeout time.Duration) {
	if timeout > 0 {
		fd.SetDeadline(time.Time{}) //nolint:errcheck
	}
}

func newConn(fd net.Conn, sec *secrets) *Conn {
	c := &Conn{
		fd:       fd,
		rw:       newFrameRW(fd, sec),
		remoteID: sec.remoteID,
	}
	c.readTimeout.Store(int64(FrameReadTimeout))
	c.writeTimeout.Store(int64(FrameWriteTimeout))
	c.maxReadFrame.Store(DefaultMaxReadFrame)
	return c
}

// RemoteID returns the authenticated peer identity.
func (c *Conn) RemoteID() enode.ID { return c.remoteID }

// SetTimeouts overrides the per-message deadlines (zero disables).
func (c *Conn) SetTimeouts(read, write time.Duration) {
	c.readTimeout.Store(int64(read))
	c.writeTimeout.Store(int64(write))
}

// SetSnappy enables devp2p-v5 payload compression. Real clients turn
// this on right after the HELLO exchange when both sides advertise
// base protocol version ≥ 5; message codes stay uncompressed.
func (c *Conn) SetSnappy(on bool) { c.snappy.Store(on) }

// SetMaxReadFrame overrides the inbound frame-size cap (which also
// bounds decompressed snappy payloads). Values outside
// (0, MaxFrameSize] are clamped to the absolute limit.
func (c *Conn) SetMaxReadFrame(n int) {
	if n <= 0 || n > MaxFrameSize {
		n = MaxFrameSize
	}
	c.maxReadFrame.Store(int64(n))
}

// WriteMsg sends one message with the standard write deadline.
func (c *Conn) WriteMsg(code uint64, payload []byte) error {
	if d := c.writeTimeout.Load(); d > 0 {
		//lint:ignore wallclock socket deadlines are absolute wall-clock instants the kernel compares against real time
		c.fd.SetWriteDeadline(time.Now().Add(time.Duration(d))) //nolint:errcheck
	}
	if c.snappy.Load() {
		enc, err := snappy.Encode(payload)
		if err != nil {
			return fmt.Errorf("rlpx: compressing payload: %w", err)
		}
		payload = enc
	}
	err := c.rw.WriteMsg(code, payload)
	if err == nil {
		countWrite(len(payload))
	}
	return err
}

// WriteMsgValue RLP-encodes v straight into the connection's payload
// scratch and sends it as one message, skipping the per-message
// payload allocation that WriteMsg(code, rlp.EncodeToBytes(v)) pays.
// Encoding uses the compiled codec plans, so steady-state sends of
// wire structs allocate nothing on the encode side.
func (c *Conn) WriteMsgValue(code uint64, v any) error {
	payload, err := rlp.EncodeAppend(c.pbuf[:0], v)
	if err != nil {
		return fmt.Errorf("rlpx: encoding message: %w", err)
	}
	if cap(payload) <= maxKeepPayload {
		c.pbuf = payload[:0]
	}
	return c.WriteMsg(code, payload)
}

// maxKeepPayload caps the payload scratch retained between messages;
// a rare oversized send should not pin its buffer forever.
const maxKeepPayload = 1 << 17

// ReadMsg receives one message with the standard read deadline.
func (c *Conn) ReadMsg() (code uint64, payload []byte, err error) {
	if d := c.readTimeout.Load(); d > 0 {
		//lint:ignore wallclock socket deadlines are absolute wall-clock instants the kernel compares against real time
		c.fd.SetReadDeadline(time.Now().Add(time.Duration(d))) //nolint:errcheck
	}
	max := int(c.maxReadFrame.Load())
	code, payload, err = c.rw.ReadMsg(max)
	if err == nil {
		countRead(len(payload))
	}
	if err == nil && c.snappy.Load() && len(payload) > 0 {
		// The decompressed payload is held to the same cap as the wire
		// frame, so a snappy bomb cannot expand past it.
		payload, err = snappy.DecodeCapped(payload, max)
		if err != nil {
			return 0, nil, fmt.Errorf("rlpx: decompressing payload: %w", err)
		}
	}
	return code, payload, err
}

// Close tears down the underlying connection.
func (c *Conn) Close() error { return c.fd.Close() }

// SmoothedRTT reports the connection's round-trip estimate. Real
// kernels expose TCP's sRTT; portably we cannot, so this returns the
// value recorded by the dialer (set via SetRTT) — NodeFinder stores
// its handshake timing here, mirroring how the paper samples latency
// from the TCP socket (§4).
func (c *Conn) SmoothedRTT() time.Duration { return time.Duration(c.rtt.Load()) }

// SetRTT records a measured round-trip estimate for SmoothedRTT.
func (c *Conn) SetRTT(d time.Duration) { c.rtt.Store(int64(d)) }
