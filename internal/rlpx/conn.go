package rlpx

import (
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/crypto/secp256k1"
	"repro/internal/enode"
	"repro/internal/snappy"
)

// Timeouts matching the Geth constants the paper lists in §4.
const (
	// FrameReadTimeout bounds a single message read.
	FrameReadTimeout = 30 * time.Second
	// FrameWriteTimeout bounds a single message write.
	FrameWriteTimeout = 20 * time.Second
)

// Conn is an established RLPx connection carrying framed messages.
// Option fields (timeouts, snappy, RTT) may be set from a different
// goroutine than the reader/writer and are therefore atomic; the
// frame reader and writer themselves must each be used from at most
// one goroutine at a time.
type Conn struct {
	fd       net.Conn
	rw       *frameRW
	remoteID enode.ID

	readTimeout  atomic.Int64 // nanoseconds; 0 disables
	writeTimeout atomic.Int64
	rtt          atomic.Int64
	snappy       atomic.Bool
}

// Initiate performs the initiator handshake over an established TCP
// connection toward the node with the given identity.
func Initiate(fd net.Conn, priv *secp256k1.PrivateKey, remoteID enode.ID) (*Conn, error) {
	sec, err := initiatorHandshake(fd, priv, remoteID)
	countHandshake(err)
	if err != nil {
		return nil, err
	}
	return newConn(fd, sec), nil
}

// Accept performs the recipient handshake on an inbound connection
// and learns the initiator's identity.
func Accept(fd net.Conn, priv *secp256k1.PrivateKey) (*Conn, error) {
	sec, err := recipientHandshake(fd, priv)
	countHandshake(err)
	if err != nil {
		return nil, err
	}
	return newConn(fd, sec), nil
}

func newConn(fd net.Conn, sec *secrets) *Conn {
	c := &Conn{
		fd:       fd,
		rw:       newFrameRW(fd, sec),
		remoteID: sec.remoteID,
	}
	c.readTimeout.Store(int64(FrameReadTimeout))
	c.writeTimeout.Store(int64(FrameWriteTimeout))
	return c
}

// RemoteID returns the authenticated peer identity.
func (c *Conn) RemoteID() enode.ID { return c.remoteID }

// SetTimeouts overrides the per-message deadlines (zero disables).
func (c *Conn) SetTimeouts(read, write time.Duration) {
	c.readTimeout.Store(int64(read))
	c.writeTimeout.Store(int64(write))
}

// SetSnappy enables devp2p-v5 payload compression. Real clients turn
// this on right after the HELLO exchange when both sides advertise
// base protocol version ≥ 5; message codes stay uncompressed.
func (c *Conn) SetSnappy(on bool) { c.snappy.Store(on) }

// WriteMsg sends one message with the standard write deadline.
func (c *Conn) WriteMsg(code uint64, payload []byte) error {
	if d := c.writeTimeout.Load(); d > 0 {
		c.fd.SetWriteDeadline(time.Now().Add(time.Duration(d))) //nolint:errcheck
	}
	if c.snappy.Load() {
		enc, err := snappy.Encode(payload)
		if err != nil {
			return fmt.Errorf("rlpx: compressing payload: %w", err)
		}
		payload = enc
	}
	err := c.rw.WriteMsg(code, payload)
	if err == nil {
		countWrite(len(payload))
	}
	return err
}

// ReadMsg receives one message with the standard read deadline.
func (c *Conn) ReadMsg() (code uint64, payload []byte, err error) {
	if d := c.readTimeout.Load(); d > 0 {
		c.fd.SetReadDeadline(time.Now().Add(time.Duration(d))) //nolint:errcheck
	}
	code, payload, err = c.rw.ReadMsg()
	if err == nil {
		countRead(len(payload))
	}
	if err == nil && c.snappy.Load() && len(payload) > 0 {
		payload, err = snappy.Decode(payload)
		if err != nil {
			return 0, nil, fmt.Errorf("rlpx: decompressing payload: %w", err)
		}
	}
	return code, payload, err
}

// Close tears down the underlying connection.
func (c *Conn) Close() error { return c.fd.Close() }

// SmoothedRTT reports the connection's round-trip estimate. Real
// kernels expose TCP's sRTT; portably we cannot, so this returns the
// value recorded by the dialer (set via SetRTT) — NodeFinder stores
// its handshake timing here, mirroring how the paper samples latency
// from the TCP socket (§4).
func (c *Conn) SmoothedRTT() time.Duration { return time.Duration(c.rtt.Load()) }

// SetRTT records a measured round-trip estimate for SmoothedRTT.
func (c *Conn) SetRTT(d time.Duration) { c.rtt.Store(int64(d)) }
