package rlpx

import (
	"sync/atomic"

	"repro/internal/metrics"
)

// Transport-level telemetry. RLPx connections are created directly
// by Initiate/Accept (there is no per-connection config object to
// thread a registry through), so instrumentation is enabled
// process-wide via EnableMetrics. The instrument set is held behind
// an atomic pointer: disabled costs one pointer load per hook, and
// enabling mid-run is race-free.
var rlpxInstr atomic.Pointer[rlpxInstruments]

type rlpxInstruments struct {
	handshakesOK   *metrics.Counter
	handshakesFail *metrics.Counter
	framesIn       *metrics.Counter
	framesOut      *metrics.Counter
	bytesIn        *metrics.Counter
	bytesOut       *metrics.Counter
}

// EnableMetrics registers RLPx transport instruments on r and starts
// counting handshakes, frames, and payload bytes in each direction.
// Passing nil disables instrumentation again.
func EnableMetrics(r *metrics.Registry) {
	if r == nil {
		rlpxInstr.Store(nil)
		return
	}
	rlpxInstr.Store(&rlpxInstruments{
		handshakesOK:   r.Counter("rlpx.handshakes_ok"),
		handshakesFail: r.Counter("rlpx.handshakes_failed"),
		framesIn:       r.Counter("rlpx.frames_in"),
		framesOut:      r.Counter("rlpx.frames_out"),
		bytesIn:        r.Counter("rlpx.bytes_in"),
		bytesOut:       r.Counter("rlpx.bytes_out"),
	})
}

// countHandshake records one key-exchange attempt's outcome.
func countHandshake(err error) {
	m := rlpxInstr.Load()
	if m == nil {
		return
	}
	if err == nil {
		m.handshakesOK.Inc()
	} else {
		m.handshakesFail.Inc()
	}
}

// countRead records one received frame and its payload size.
func countRead(payloadLen int) {
	if m := rlpxInstr.Load(); m != nil {
		m.framesIn.Inc()
		m.bytesIn.Add(uint64(payloadLen))
	}
}

// countWrite records one sent frame and its payload size.
func countWrite(payloadLen int) {
	if m := rlpxInstr.Load(); m != nil {
		m.framesOut.Inc()
		m.bytesOut.Add(uint64(payloadLen))
	}
}
