// Package rlpx implements the RLPx transport protocol: the encrypted,
// authenticated TCP session layer of Ethereum's network stack.
//
// A connection is established in two phases (§2.1 of the paper):
//
//  1. An ECIES key-exchange handshake. The initiator sends an
//     encrypted "auth" message carrying a signature made with an
//     ephemeral key over (static-shared-secret XOR nonce); the
//     recipient answers with an encrypted "ack" carrying its own
//     ephemeral public key and nonce. Both sides then derive frame
//     secrets from the ephemeral ECDH result and the two nonces.
//
//  2. Framed messaging. Every message travels in a frame encrypted
//     with AES-256-CTR and authenticated with a rolling Keccak-256
//     MAC keyed per direction.
//
// The handshake uses the EIP-8 format (2-byte size prefix and RLP
// bodies with trailing padding) that clients of the paper's era emit.
// Snappy payload compression (devp2p ≥ 5) is supported via
// Conn.SetSnappy, which callers enable after the HELLO exchange when
// both sides advertise base protocol version 5, exactly as real
// clients do.
package rlpx

import (
	"bytes"
	"crypto/rand"
	"errors"
	"fmt"
	"io"

	"repro/internal/crypto/ecies"
	"repro/internal/crypto/keccak"
	"repro/internal/crypto/secp256k1"
	"repro/internal/enode"
	"repro/internal/rlp"
)

const (
	// handshake message versions.
	authVersion = 4
	ackVersion  = 4

	shaLen   = 32
	sigLen   = secp256k1.SignatureLength
	pubLen   = 64
	nonceLen = 32
)

// Handshake errors.
var (
	ErrBadHandshake = errors.New("rlpx: bad handshake")
)

// authMsgV4 is the EIP-8 auth body (initiator → recipient).
type authMsgV4 struct {
	Signature   [sigLen]byte
	InitiatorPK [pubLen]byte
	Nonce       [nonceLen]byte
	Version     uint
	Rest        []rlp.RawValue `rlp:"tail"`
}

// authAckV4 is the EIP-8 ack body (recipient → initiator).
type authAckV4 struct {
	EphemeralPK [pubLen]byte
	Nonce       [nonceLen]byte
	Version     uint
	Rest        []rlp.RawValue `rlp:"tail"`
}

// secrets are the symmetric session keys derived by the handshake.
type secrets struct {
	aes, mac              []byte
	egressMAC, ingressMAC *macState
	remoteID              enode.ID
}

// handshakeState accumulates one side's handshake.
type handshakeState struct {
	initiator bool
	remotePub *secp256k1.PublicKey // remote static key

	initNonce, respNonce []byte
	ephemeralKey         *secp256k1.PrivateKey
	remoteEphemeralPub   *secp256k1.PublicKey

	rbuf []byte // raw auth packet (for MAC seeding)
	wbuf []byte // raw ack packet
}

// xor32 xors two 32-byte values.
func xor32(a, b []byte) []byte {
	out := make([]byte, 32)
	for i := range out {
		out[i] = a[i] ^ b[i]
	}
	return out
}

// initiatorHandshake runs the auth/ack exchange from the dialing
// side. remoteID must be the expected node identity.
func initiatorHandshake(conn io.ReadWriter, priv *secp256k1.PrivateKey, remoteID enode.ID) (*secrets, error) {
	remotePub, err := remoteID.Pubkey()
	if err != nil {
		return nil, fmt.Errorf("rlpx: remote ID is not a valid key: %w", err)
	}
	h := &handshakeState{initiator: true, remotePub: remotePub}

	authPacket, err := h.makeAuthMsg(priv)
	if err != nil {
		return nil, err
	}
	if _, err := conn.Write(authPacket); err != nil {
		return nil, fmt.Errorf("rlpx: writing auth: %w", err)
	}
	h.wbuf = authPacket

	ackPacket, ackPlain, err := readHandshakeMsg(conn, priv)
	if err != nil {
		return nil, err
	}
	h.rbuf = ackPacket
	var ack authAckV4
	if err := decodeHandshakeBody(ackPlain, &ack); err != nil {
		return nil, fmt.Errorf("%w: decoding ack: %v", ErrBadHandshake, err)
	}
	h.respNonce = ack.Nonce[:]
	h.remoteEphemeralPub, err = secp256k1.ParsePublicKey(ack.EphemeralPK[:])
	if err != nil {
		return nil, fmt.Errorf("%w: bad ephemeral key in ack: %v", ErrBadHandshake, err)
	}
	return h.deriveSecrets(remoteID)
}

// recipientHandshake runs the exchange from the listening side and
// returns the discovered initiator identity.
func recipientHandshake(conn io.ReadWriter, priv *secp256k1.PrivateKey) (*secrets, error) {
	h := &handshakeState{}

	authPacket, authPlain, err := readHandshakeMsg(conn, priv)
	if err != nil {
		return nil, err
	}
	h.rbuf = authPacket
	var auth authMsgV4
	if err := decodeHandshakeBody(authPlain, &auth); err != nil {
		return nil, fmt.Errorf("%w: decoding auth: %v", ErrBadHandshake, err)
	}
	remotePub, err := secp256k1.ParsePublicKey(auth.InitiatorPK[:])
	if err != nil {
		return nil, fmt.Errorf("%w: bad initiator key: %v", ErrBadHandshake, err)
	}
	h.remotePub = remotePub
	h.initNonce = auth.Nonce[:]

	// Recover the initiator's ephemeral key from the signature over
	// (static-shared-secret XOR nonce).
	ss, err := secp256k1.SharedSecret(priv, remotePub)
	if err != nil {
		return nil, fmt.Errorf("rlpx: static ECDH: %w", err)
	}
	signed := xor32(ss, h.initNonce)
	ephPub, err := secp256k1.RecoverPubkey(signed, auth.Signature[:])
	if err != nil {
		return nil, fmt.Errorf("%w: recovering ephemeral key: %v", ErrBadHandshake, err)
	}
	h.remoteEphemeralPub = ephPub

	// Send the ack.
	ackPacket, err := h.makeAuthAck(priv)
	if err != nil {
		return nil, err
	}
	if _, err := conn.Write(ackPacket); err != nil {
		return nil, fmt.Errorf("rlpx: writing ack: %w", err)
	}
	h.wbuf = ackPacket
	return h.deriveSecrets(enode.PubkeyID(remotePub))
}

// decodeHandshakeBody decodes the first RLP value of an EIP-8 body,
// ignoring the random trailing padding that follows the list.
func decodeHandshakeBody(plain []byte, v any) error {
	s := rlp.NewStream(bytes.NewReader(plain), uint64(len(plain)))
	return s.Decode(v)
}

func (h *handshakeState) makeAuthMsg(priv *secp256k1.PrivateKey) ([]byte, error) {
	h.initNonce = make([]byte, nonceLen)
	if _, err := rand.Read(h.initNonce); err != nil {
		return nil, err
	}
	var err error
	h.ephemeralKey, err = secp256k1.GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	ss, err := secp256k1.SharedSecret(priv, h.remotePub)
	if err != nil {
		return nil, fmt.Errorf("rlpx: static ECDH: %w", err)
	}
	signed := xor32(ss, h.initNonce)
	sig, err := secp256k1.Sign(h.ephemeralKey, signed)
	if err != nil {
		return nil, fmt.Errorf("rlpx: signing auth: %w", err)
	}
	msg := &authMsgV4{Version: authVersion}
	copy(msg.Signature[:], sig)
	copy(msg.InitiatorPK[:], priv.Pub.SerializeRaw())
	copy(msg.Nonce[:], h.initNonce)
	return sealEIP8(msg, h.remotePub)
}

func (h *handshakeState) makeAuthAck(priv *secp256k1.PrivateKey) ([]byte, error) {
	h.respNonce = make([]byte, nonceLen)
	if _, err := rand.Read(h.respNonce); err != nil {
		return nil, err
	}
	var err error
	h.ephemeralKey, err = secp256k1.GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	msg := &authAckV4{Version: ackVersion}
	copy(msg.EphemeralPK[:], h.ephemeralKey.Pub.SerializeRaw())
	copy(msg.Nonce[:], h.respNonce)
	return sealEIP8(msg, h.remotePub)
}

// sealEIP8 RLP-encodes, pads, encrypts, and prefixes a handshake
// message per EIP-8.
func sealEIP8(msg any, remotePub *secp256k1.PublicKey) ([]byte, error) {
	body, err := rlp.EncodeToBytes(msg)
	if err != nil {
		return nil, err
	}
	// Random padding of 100-300 bytes disguises the message type.
	padLen := 100 + randByteInt(200)
	pad := make([]byte, padLen)
	rand.Read(pad)
	body = append(body, pad...)

	prefix := make([]byte, 2)
	ctLen := len(body) + ecies.Overhead
	prefix[0] = byte(ctLen >> 8)
	prefix[1] = byte(ctLen)

	ct, err := ecies.Encrypt(rand.Reader, remotePub, body, nil, prefix)
	if err != nil {
		return nil, err
	}
	return append(prefix, ct...), nil
}

func randByteInt(n int) int {
	var b [2]byte
	rand.Read(b[:])
	return (int(b[0])<<8 | int(b[1])) % n
}

// readHandshakeMsg reads a size-prefixed EIP-8 handshake packet and
// decrypts it.
func readHandshakeMsg(r io.Reader, priv *secp256k1.PrivateKey) (packet, plain []byte, err error) {
	prefix := make([]byte, 2)
	if _, err := io.ReadFull(r, prefix); err != nil {
		return nil, nil, fmt.Errorf("rlpx: reading handshake size: %w", err)
	}
	size := int(prefix[0])<<8 | int(prefix[1])
	if size < ecies.Overhead {
		return nil, nil, fmt.Errorf("%w: handshake size %d too small", ErrBadHandshake, size)
	}
	buf := make([]byte, size)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, nil, fmt.Errorf("rlpx: reading handshake body: %w", err)
	}
	plain, err = ecies.Decrypt(priv, buf, nil, prefix)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: decrypting: %v", ErrBadHandshake, err)
	}
	return append(prefix, buf...), plain, nil
}

// deriveSecrets computes the frame keys and MAC states (§ "secrets"
// of the RLPx spec).
func (h *handshakeState) deriveSecrets(remoteID enode.ID) (*secrets, error) {
	ephShared, err := secp256k1.SharedSecret(h.ephemeralKey, h.remoteEphemeralPub)
	if err != nil {
		return nil, fmt.Errorf("rlpx: ephemeral ECDH: %w", err)
	}
	// shared-secret = keccak(eph || keccak(respNonce || initNonce))
	nonceHash := keccak.Sum256(append(append([]byte{}, h.respNonce...), h.initNonce...))
	sharedSecret := keccak.Sum256(append(append([]byte{}, ephShared...), nonceHash[:]...))
	aesSecret := keccak.Sum256(append(append([]byte{}, ephShared...), sharedSecret[:]...))
	macSecret := keccak.Sum256(append(append([]byte{}, ephShared...), aesSecret[:]...))

	s := &secrets{aes: aesSecret[:], mac: macSecret[:], remoteID: remoteID}

	// MAC states: egress seeded with (mac-secret ^ remote-nonce) and
	// our outbound handshake packet; ingress with (mac-secret ^ own
	// nonce) and the inbound packet.
	var egressSeed, ingressSeed []byte
	if h.initiator {
		egressSeed = xor32(macSecret[:], h.respNonce)
		ingressSeed = xor32(macSecret[:], h.initNonce)
	} else {
		egressSeed = xor32(macSecret[:], h.initNonce)
		ingressSeed = xor32(macSecret[:], h.respNonce)
	}
	egress := newMACState(macSecret[:])
	egress.hash.Write(egressSeed)
	egress.hash.Write(h.wbuf)
	ingress := newMACState(macSecret[:])
	ingress.hash.Write(ingressSeed)
	ingress.hash.Write(h.rbuf)
	s.egressMAC, s.ingressMAC = egress, ingress
	return s, nil
}
