package rlpx

import (
	"crypto/aes"
	"crypto/cipher"
	"errors"
	"fmt"
	"hash"
	"io"

	"repro/internal/crypto/keccak"
	"repro/internal/rlp"
)

// Frame layer errors.
var (
	ErrBadHeaderMAC = errors.New("rlpx: bad header MAC")
	ErrBadFrameMAC  = errors.New("rlpx: bad frame MAC")
	ErrFrameTooBig  = errors.New("rlpx: frame exceeds size limit")
)

// MaxFrameSize bounds a single frame's payload; the devp2p base
// protocol never needs more in this repository.
const MaxFrameSize = 16 * 1024 * 1024

// zeroHeader is the constant header-data (an RLP list [0, 0]) that
// fills bytes 3..5 of every frame header.
var zeroHeader = []byte{0xC2, 0x80, 0x80}

// macState is one direction's rolling MAC: a running Keccak-256
// absorbing frame ciphertext, combined with an AES-ECB step keyed by
// the MAC secret. The scratch arrays are reused across frames, which
// is safe because each direction of a Conn is driven by at most one
// goroutine (see Conn); results returned by the compute methods are
// only valid until the next MAC operation on the same state.
type macState struct {
	hash  hash.Hash
	block cipher.Block
	sum   [32]byte // hash.Sum destination, reused every call
	seed  [16]byte // frame-MAC seed, kept out of sum's way
	aes   [16]byte // AES-ECB output for the update step
}

func newMACState(macSecret []byte) *macState {
	block, err := aes.NewCipher(macSecret)
	if err != nil {
		panic("rlpx: mac secret has wrong length: " + err.Error())
	}
	return &macState{hash: keccak.New256(), block: block}
}

// computeHeaderMAC advances the MAC over a header ciphertext.
func (m *macState) computeHeaderMAC(headerCiphertext []byte) []byte {
	return m.update(headerCiphertext)
}

// computeFrameMAC advances the MAC over frame ciphertext.
func (m *macState) computeFrameMAC(frameCiphertext []byte) []byte {
	m.hash.Write(frameCiphertext)
	copy(m.seed[:], m.hash.Sum(m.sum[:0]))
	return m.update(m.seed[:])
}

// update implements the odd RLPx MAC step: AES-encrypt the current
// digest, XOR with the seed, absorb, and return the new digest half.
func (m *macState) update(seed []byte) []byte {
	m.block.Encrypt(m.aes[:], m.hash.Sum(m.sum[:0])[:16])
	for i := range m.aes {
		m.aes[i] ^= seed[i]
	}
	m.hash.Write(m.aes[:])
	return m.hash.Sum(m.sum[:0])[:16]
}

// frameRW encrypts and authenticates frames in both directions.
// wbuf and headbuf are per-direction scratch reused across frames;
// the Conn contract of one goroutine per direction makes that safe.
type frameRW struct {
	conn    io.ReadWriter
	enc     cipher.Stream // egress AES-CTR keystream
	dec     cipher.Stream // ingress AES-CTR keystream
	em      *macState
	im      *macState
	wbuf    []byte   // whole egress wire frame: header|hmac|frame|fmac
	headbuf [32]byte // ingress header ciphertext + MAC
}

func newFrameRW(conn io.ReadWriter, s *secrets) *frameRW {
	encBlock, err := aes.NewCipher(s.aes)
	if err != nil {
		panic("rlpx: aes secret has wrong length: " + err.Error())
	}
	decBlock, _ := aes.NewCipher(s.aes)
	//lint:ignore boundedalloc AES block size is a 16-byte cipher constant, not peer input
	iv := make([]byte, encBlock.BlockSize()) // zero IV: keystream is session-unique
	return &frameRW{
		conn: conn,
		enc:  cipher.NewCTR(encBlock, iv),
		dec:  cipher.NewCTR(decBlock, iv),
		em:   s.egressMAC,
		im:   s.ingressMAC,
	}
}

// WriteMsg frames one message: code plus pre-encoded RLP payload.
// The wire image is assembled in rw.wbuf, which is reused across
// calls and only grows.
func (rw *frameRW) WriteMsg(code uint64, payload []byte) error {
	var codeArr [9]byte
	codeBytes := rlp.AppendUint(codeArr[:0], code)
	frameSize := len(codeBytes) + len(payload)
	if frameSize > MaxFrameSize {
		return ErrFrameTooBig
	}
	padded := frameSize
	if over := frameSize % 16; over != 0 {
		padded += 16 - over
	}
	total := 32 + padded + 16
	if cap(rw.wbuf) < total {
		rw.wbuf = make([]byte, total)
	}
	wbuf := rw.wbuf[:total]

	// Header: 3-byte size, zero header-data, zero padding to 16. The
	// tail must be cleared explicitly since the buffer is reused.
	header := wbuf[:16]
	header[0] = byte(frameSize >> 16)
	header[1] = byte(frameSize >> 8)
	header[2] = byte(frameSize)
	copy(header[3:], zeroHeader)
	for i := 3 + len(zeroHeader); i < 16; i++ {
		header[i] = 0
	}
	rw.enc.XORKeyStream(header, header)
	// The MAC result aliases macState scratch; copy it into the wire
	// buffer before the frame MAC runs.
	copy(wbuf[16:32], rw.em.computeHeaderMAC(header))

	// Frame data padded to a 16-byte boundary; clear the stale tail.
	frame := wbuf[32 : 32+padded]
	n := copy(frame, codeBytes)
	n += copy(frame[n:], payload)
	for i := n; i < padded; i++ {
		frame[i] = 0
	}
	rw.enc.XORKeyStream(frame, frame)
	copy(wbuf[32+padded:], rw.em.computeFrameMAC(frame))

	_, err := rw.conn.Write(wbuf)
	return err
}

// ReadMsg reads and authenticates one frame, returning the message
// code and payload. maxFrame caps the advertised frame size; the
// check runs before the frame buffer is allocated, so a hostile
// header announcing (say) 16 MiB costs nothing but the 32-byte header
// read. Non-positive maxFrame falls back to the absolute limit.
func (rw *frameRW) ReadMsg(maxFrame int) (code uint64, payload []byte, err error) {
	if maxFrame <= 0 || maxFrame > MaxFrameSize {
		maxFrame = MaxFrameSize
	}
	headbuf := rw.headbuf[:]
	if _, err := io.ReadFull(rw.conn, headbuf); err != nil {
		return 0, nil, err
	}
	wantHeaderMAC := rw.im.computeHeaderMAC(headbuf[:16])
	if !hmacEqual(wantHeaderMAC, headbuf[16:]) {
		return 0, nil, ErrBadHeaderMAC
	}
	rw.dec.XORKeyStream(headbuf[:16], headbuf[:16])
	frameSize := int(headbuf[0])<<16 | int(headbuf[1])<<8 | int(headbuf[2])
	if frameSize > maxFrame {
		return 0, nil, fmt.Errorf("%w: %d > %d", ErrFrameTooBig, frameSize, maxFrame)
	}
	padded := frameSize
	if over := frameSize % 16; over != 0 {
		padded += 16 - over
	}
	// framebuf is freshly allocated on purpose: the returned payload
	// aliases it and is owned by the caller after ReadMsg returns.
	framebuf := make([]byte, padded+16)
	if _, err := io.ReadFull(rw.conn, framebuf); err != nil {
		return 0, nil, fmt.Errorf("rlpx: reading frame: %w", err)
	}
	frame, mac := framebuf[:padded], framebuf[padded:]
	wantFrameMAC := rw.im.computeFrameMAC(frame)
	if !hmacEqual(wantFrameMAC, mac) {
		return 0, nil, ErrBadFrameMAC
	}
	rw.dec.XORKeyStream(frame, frame)
	content := frame[:frameSize]

	// Message code is a single RLP value at the front.
	rest, err := readMsgCode(content, &code)
	if err != nil {
		return 0, nil, err
	}
	return code, rest, nil
}

func readMsgCode(b []byte, code *uint64) ([]byte, error) {
	content, rest, err := rlp.SplitString(b)
	if err != nil {
		return nil, fmt.Errorf("rlpx: reading message code: %w", err)
	}
	var v uint64
	for _, c := range content {
		v = v<<8 | uint64(c)
	}
	// A single byte < 0x80 is its own value; empty string is zero.
	*code = v
	return rest, nil
}

func hmacEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	var v byte
	for i := range a {
		v |= a[i] ^ b[i]
	}
	return v == 0
}
