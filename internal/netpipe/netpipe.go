// Package netpipe provides an in-memory, full-duplex net.Conn pair
// with buffered writes — loopback TCP semantics without sockets.
//
// net.Pipe is synchronous: every Write blocks until the far end
// Reads. Protocol handshakes where both sides send before receiving
// (DEVp2p HELLO, eth STATUS) deadlock on it, and hostile peers that
// talk out of turn deadlock even read-disciplined servers. A netpipe
// endpoint instead appends writes to the peer's receive buffer and
// returns immediately, the way a TCP socket's kernel buffer does, so
// message ordering between the two ends never matters.
//
// Deadlines are fully supported (the dial-budget machinery in
// nodefinder arms them on every promoted connection); an expired read
// or write returns os.ErrDeadlineExceeded, which prints as the same
// "i/o timeout" a real socket produces.
package netpipe

import (
	"io"
	"net"
	"os"
	"sync"
	"time"
)

// Pair returns the two ends of a connected in-memory conn.
func Pair() (net.Conn, net.Conn) {
	a2b := newBuffer()
	b2a := newBuffer()
	a := &conn{rd: b2a, wr: a2b, local: addr("netpipe-a"), remote: addr("netpipe-b")}
	b := &conn{rd: a2b, wr: b2a, local: addr("netpipe-b"), remote: addr("netpipe-a")}
	return a, b
}

type addr string

func (a addr) Network() string { return "netpipe" }
func (a addr) String() string  { return string(a) }

// buffer is one direction of the pipe: an unbounded byte queue with a
// condition variable for blocked readers and deadline wake-ups.
type buffer struct {
	mu     sync.Mutex
	cond   *sync.Cond
	data   []byte
	closed bool // write end closed: drain then EOF

	readDeadline  time.Time
	deadlineTimer *time.Timer
}

func newBuffer() *buffer {
	b := &buffer{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *buffer) write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return 0, io.ErrClosedPipe
	}
	b.data = append(b.data, p...)
	b.cond.Broadcast()
	return len(p), nil
}

func (b *buffer) read(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if len(b.data) > 0 {
			n := copy(p, b.data)
			b.data = b.data[n:]
			if len(b.data) == 0 {
				b.data = nil // release the backing array
			}
			return n, nil
		}
		if b.closed {
			return 0, io.EOF
		}
		if !b.readDeadline.IsZero() && !time.Now().Before(b.readDeadline) {
			return 0, os.ErrDeadlineExceeded
		}
		b.cond.Wait()
	}
}

// close marks the write end closed. Pending data stays readable; a
// reader that drains it then sees io.EOF, like a TCP FIN.
func (b *buffer) close() {
	b.mu.Lock()
	b.closed = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// setReadDeadline arms a wake-up for readers blocked on the buffer.
func (b *buffer) setReadDeadline(t time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.readDeadline = t
	if b.deadlineTimer != nil {
		b.deadlineTimer.Stop()
		b.deadlineTimer = nil
	}
	if t.IsZero() {
		b.cond.Broadcast()
		return
	}
	d := time.Until(t)
	if d <= 0 {
		b.cond.Broadcast()
		return
	}
	b.deadlineTimer = time.AfterFunc(d, func() {
		b.mu.Lock()
		b.cond.Broadcast()
		b.mu.Unlock()
	})
}

// stopTimer releases the deadline timer; called on Close so a closed
// conn leaves no timer behind.
func (b *buffer) stopTimer() {
	b.mu.Lock()
	if b.deadlineTimer != nil {
		b.deadlineTimer.Stop()
		b.deadlineTimer = nil
	}
	b.mu.Unlock()
}

// conn is one endpoint.
type conn struct {
	rd, wr        *buffer
	local, remote addr

	mu            sync.Mutex
	closed        bool
	writeDeadline time.Time
}

func (c *conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, io.ErrClosedPipe
	}
	c.mu.Unlock()
	return c.rd.read(p)
}

func (c *conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, io.ErrClosedPipe
	}
	// Writes never block (the buffer is unbounded), so the write
	// deadline only matters once already expired.
	if !c.writeDeadline.IsZero() && !time.Now().Before(c.writeDeadline) {
		c.mu.Unlock()
		return 0, os.ErrDeadlineExceeded
	}
	c.mu.Unlock()
	return c.wr.write(p)
}

// Close closes both directions: our readers unblock, and the peer
// drains what we already sent then sees EOF.
func (c *conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.rd.close()
	c.rd.stopTimer()
	c.wr.close()
	return nil
}

func (c *conn) LocalAddr() net.Addr  { return c.local }
func (c *conn) RemoteAddr() net.Addr { return c.remote }

func (c *conn) SetDeadline(t time.Time) error {
	c.SetReadDeadline(t)  //nolint:errcheck
	c.SetWriteDeadline(t) //nolint:errcheck
	return nil
}

func (c *conn) SetReadDeadline(t time.Time) error {
	c.rd.setReadDeadline(t)
	return nil
}

func (c *conn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.writeDeadline = t
	c.mu.Unlock()
	return nil
}
