package netpipe

import (
	"bytes"
	"io"
	"os"
	"testing"
	"time"

	"repro/internal/testutil/leakcheck"
)

// TestBufferedWritesDoNotBlock: both ends write before either reads —
// the pattern that deadlocks net.Pipe.
func TestBufferedWritesDoNotBlock(t *testing.T) {
	leakcheck.Check(t)
	a, b := Pair()
	defer a.Close()
	defer b.Close()
	msgA := []byte("hello-from-a")
	msgB := []byte("hello-from-b")
	if _, err := a.Write(msgA); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Write(msgB); err != nil {
		t.Fatal(err)
	}
	gotB := make([]byte, len(msgA))
	if _, err := io.ReadFull(b, gotB); err != nil || !bytes.Equal(gotB, msgA) {
		t.Fatalf("b read %q err %v", gotB, err)
	}
	gotA := make([]byte, len(msgB))
	if _, err := io.ReadFull(a, gotA); err != nil || !bytes.Equal(gotA, msgB) {
		t.Fatalf("a read %q err %v", gotA, err)
	}
}

// TestCloseSemantics: the peer drains buffered data then sees EOF;
// writes to a closed peer fail.
func TestCloseSemantics(t *testing.T) {
	leakcheck.Check(t)
	a, b := Pair()
	a.Write([]byte("tail")) //nolint:errcheck
	a.Close()
	got := make([]byte, 4)
	if _, err := io.ReadFull(b, got); err != nil || string(got) != "tail" {
		t.Fatalf("drain after close: %q err %v", got, err)
	}
	if _, err := b.Read(got); err != io.EOF {
		t.Fatalf("want EOF after drain, got %v", err)
	}
	if _, err := b.Write([]byte("x")); err != io.ErrClosedPipe {
		t.Fatalf("write to closed peer: %v", err)
	}
	b.Close()
}

// TestReadDeadline: a blocked read wakes at the deadline with the
// same "i/o timeout" a socket produces.
func TestReadDeadline(t *testing.T) {
	leakcheck.Check(t)
	a, b := Pair()
	defer a.Close()
	defer b.Close()
	a.SetReadDeadline(time.Now().Add(30 * time.Millisecond)) //nolint:errcheck
	start := time.Now()
	_, err := a.Read(make([]byte, 1))
	if err != os.ErrDeadlineExceeded {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("deadline did not fire promptly")
	}
	// Clearing the deadline makes reads block again; Close unblocks.
	a.SetReadDeadline(time.Time{}) //nolint:errcheck
	done := make(chan error, 1)
	go func() {
		_, err := a.Read(make([]byte, 1))
		done <- err
	}()
	b.Close()
	if err := <-done; err != io.EOF {
		t.Fatalf("read after peer close: %v", err)
	}
}
