package eth

import (
	"errors"
	"math/big"
	"testing"

	"repro/internal/chain"
	"repro/internal/devp2p"
	"repro/internal/rlp"
)

// chanRW is an in-memory MsgReadWriter pair for protocol tests.
type chanRW struct {
	in, out chan wireMsg
}

type wireMsg struct {
	code    uint64
	payload []byte
}

func newChanRW() (*chanRW, *chanRW) {
	a := make(chan wireMsg, 32)
	b := make(chan wireMsg, 32)
	return &chanRW{in: a, out: b}, &chanRW{in: b, out: a}
}

func (c *chanRW) ReadMsg() (uint64, []byte, error) {
	m, ok := <-c.in
	if !ok {
		return 0, nil, errors.New("closed")
	}
	return m.code, m.payload, nil
}

func (c *chanRW) WriteMsg(code uint64, payload []byte) error {
	c.out <- wireMsg{code, payload}
	return nil
}

const offset = devp2p.BaseProtocolLength

func mainnetStatus(c *chain.Chain) *Status {
	return &Status{
		ProtocolVersion: uint32(Version63),
		NetworkID:       c.NetworkID,
		TD:              c.TD(),
		BestHash:        c.HeadHash(),
		GenesisHash:     c.GenesisHash(),
	}
}

func TestStatusExchange(t *testing.T) {
	c := chain.New(chain.Config{NetworkID: 1, GenesisSeed: "m", Length: 5})
	a, b := newChanRW()

	go func() {
		s, err := ReadStatus(b, offset)
		if err != nil {
			t.Error(err)
			return
		}
		SendStatus(b, offset, s) //nolint:errcheck // echo back
	}()
	if err := SendStatus(a, offset, mainnetStatus(c)); err != nil {
		t.Fatal(err)
	}
	got, err := ReadStatus(a, offset)
	if err != nil {
		t.Fatal(err)
	}
	if got.NetworkID != 1 || got.GenesisHash != c.GenesisHash() || got.BestHash != c.HeadHash() {
		t.Errorf("got %+v", got)
	}
	if got.TD.Cmp(c.TD()) != 0 {
		t.Error("TD mismatch")
	}
}

func TestReadStatusDisconnect(t *testing.T) {
	a, b := newChanRW()
	go devp2p.SendDisconnect(b, devp2p.DiscTooManyPeers) //nolint:errcheck
	_, err := ReadStatus(a, offset)
	var de devp2p.DisconnectError
	if !errors.As(err, &de) || de.Reason != devp2p.DiscTooManyPeers {
		t.Fatalf("got %v", err)
	}
}

func TestCheckCompatibility(t *testing.T) {
	main := chain.New(chain.Config{NetworkID: 1, GenesisSeed: "mainnet", Length: 3})
	classic := chain.New(chain.Config{NetworkID: 1, GenesisSeed: "classic", Length: 3})
	ropsten := chain.New(chain.Config{NetworkID: 3, GenesisSeed: "ropsten", Length: 3})

	s1, s2 := mainnetStatus(main), mainnetStatus(main)
	if err := CheckCompatibility(s1, s2); err != nil {
		t.Fatal(err)
	}
	if err := CheckCompatibility(s1, mainnetStatus(ropsten)); !errors.Is(err, ErrNetworkMismatch) {
		t.Errorf("network: %v", err)
	}
	if err := CheckCompatibility(s1, mainnetStatus(classic)); !errors.Is(err, ErrGenesisMismatch) {
		t.Errorf("genesis: %v", err)
	}
	older := mainnetStatus(main)
	older.ProtocolVersion = uint32(Version62)
	if err := CheckCompatibility(s1, older); !errors.Is(err, ErrProtocolMismatch) {
		t.Errorf("version: %v", err)
	}
}

func TestHashOrNumberRLP(t *testing.T) {
	// Number form.
	n := &GetBlockHeaders{Origin: HashOrNumber{Number: 1920000}, Amount: 1}
	enc, err := rlp.EncodeToBytes(n)
	if err != nil {
		t.Fatal(err)
	}
	var back GetBlockHeaders
	if err := rlp.DecodeBytes(enc, &back); err != nil {
		t.Fatal(err)
	}
	if back.Origin.IsHash || back.Origin.Number != 1920000 || back.Amount != 1 {
		t.Errorf("number form: %+v", back)
	}
	// Hash form.
	h := &GetBlockHeaders{Origin: HashOrNumber{Hash: chain.MainnetGenesisHash, IsHash: true}, Amount: 2, Skip: 3, Reverse: true}
	enc2, err := rlp.EncodeToBytes(h)
	if err != nil {
		t.Fatal(err)
	}
	var back2 GetBlockHeaders
	if err := rlp.DecodeBytes(enc2, &back2); err != nil {
		t.Fatal(err)
	}
	if !back2.Origin.IsHash || back2.Origin.Hash != chain.MainnetGenesisHash || !back2.Reverse || back2.Skip != 3 {
		t.Errorf("hash form: %+v", back2)
	}
}

func TestServeHeaders(t *testing.T) {
	c := chain.New(chain.Config{NetworkID: 1, GenesisSeed: "serve", Length: 50})
	// Forward span.
	hs := ServeHeaders(c, &GetBlockHeaders{Origin: HashOrNumber{Number: 10}, Amount: 5})
	if len(hs) != 5 || hs[0].Number.Uint64() != 10 || hs[4].Number.Uint64() != 14 {
		t.Fatalf("forward: %d headers", len(hs))
	}
	// With skip.
	hs = ServeHeaders(c, &GetBlockHeaders{Origin: HashOrNumber{Number: 0}, Amount: 3, Skip: 9})
	if len(hs) != 3 || hs[1].Number.Uint64() != 10 || hs[2].Number.Uint64() != 20 {
		t.Fatalf("skip: %+v", hs)
	}
	// Reverse.
	hs = ServeHeaders(c, &GetBlockHeaders{Origin: HashOrNumber{Number: 10}, Amount: 3, Reverse: true})
	if len(hs) != 3 || hs[2].Number.Uint64() != 8 {
		t.Fatalf("reverse: %+v", hs)
	}
	// By hash.
	target := c.HeaderByNumber(7)
	hs = ServeHeaders(c, &GetBlockHeaders{Origin: HashOrNumber{Hash: target.HashValue(), IsHash: true}, Amount: 1})
	if len(hs) != 1 || hs[0].Number.Uint64() != 7 {
		t.Fatalf("by hash: %+v", hs)
	}
	// Beyond head truncates.
	hs = ServeHeaders(c, &GetBlockHeaders{Origin: HashOrNumber{Number: 48}, Amount: 10})
	if len(hs) != 3 {
		t.Fatalf("truncated: %d", len(hs))
	}
	// Unknown origin.
	if hs := ServeHeaders(c, &GetBlockHeaders{Origin: HashOrNumber{Number: 999}, Amount: 1}); hs != nil {
		t.Fatal("phantom origin")
	}
}

func TestVerifyDAOForkSupported(t *testing.T) {
	// Serve from a pro-fork chain.
	c := chain.New(chain.Config{NetworkID: 1, GenesisSeed: "m", DAOFork: true})
	c.ExtendTo(chain.DAOForkBlock + 1)
	a, b := newChanRW()
	go serveOneHeaderRequest(t, b, c)
	support, err := VerifyDAOFork(a, offset)
	if err != nil {
		t.Fatal(err)
	}
	if support != DAOForkSupported {
		t.Fatalf("got %v", support)
	}
}

func TestVerifyDAOForkOpposed(t *testing.T) {
	c := chain.New(chain.Config{NetworkID: 1, GenesisSeed: "m", DAOFork: false})
	c.ExtendTo(chain.DAOForkBlock + 1)
	a, b := newChanRW()
	go serveOneHeaderRequest(t, b, c)
	support, err := VerifyDAOFork(a, offset)
	if err != nil {
		t.Fatal(err)
	}
	if support != DAOForkOpposed {
		t.Fatalf("got %v", support)
	}
}

func TestVerifyDAOForkUnknownForShortChain(t *testing.T) {
	// Peer has not reached the fork block: empty response.
	c := chain.New(chain.Config{NetworkID: 1, GenesisSeed: "m", Length: 10})
	a, b := newChanRW()
	go serveOneHeaderRequest(t, b, c)
	support, err := VerifyDAOFork(a, offset)
	if err != nil {
		t.Fatal(err)
	}
	if support != DAOForkUnknown {
		t.Fatalf("got %v", support)
	}
}

func serveOneHeaderRequest(t *testing.T, rw devp2p.MsgReadWriter, c *chain.Chain) {
	t.Helper()
	code, payload, err := rw.ReadMsg()
	if err != nil || code != offset+GetBlockHeadersMsg {
		t.Errorf("server got code %#x err %v", code, err)
		return
	}
	var req GetBlockHeaders
	if err := rlp.DecodeBytes(payload, &req); err != nil {
		t.Error(err)
		return
	}
	resp, err := rlp.EncodeToBytes(ServeHeaders(c, &req))
	if err != nil {
		t.Error(err)
		return
	}
	rw.WriteMsg(offset+BlockHeadersMsg, resp) //nolint:errcheck
}

func TestReadHeadersSkipsBroadcastNoise(t *testing.T) {
	c := chain.New(chain.Config{NetworkID: 1, GenesisSeed: "m", Length: 5})
	a, b := newChanRW()
	go func() {
		// Noise first, then the real response.
		b.WriteMsg(offset+TransactionsMsg, []byte{0xC0})   //nolint:errcheck
		b.WriteMsg(offset+NewBlockHashesMsg, []byte{0xC0}) //nolint:errcheck
		resp, _ := rlp.EncodeToBytes(ServeHeaders(c, &GetBlockHeaders{Origin: HashOrNumber{Number: 1}, Amount: 1}))
		b.WriteMsg(offset+BlockHeadersMsg, resp) //nolint:errcheck
	}()
	hs, err := ReadHeaders(a, offset)
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) != 1 || hs[0].Number.Uint64() != 1 {
		t.Fatalf("got %+v", hs)
	}
}

func TestReadHeadersAnswersPing(t *testing.T) {
	c := chain.New(chain.Config{NetworkID: 1, GenesisSeed: "m", Length: 5})
	a, b := newChanRW()
	go func() {
		devp2p.SendPing(b) //nolint:errcheck
		// Expect a pong before continuing.
		code, _, _ := b.ReadMsg()
		if code != devp2p.PongMsg {
			t.Errorf("no pong, code %#x", code)
		}
		resp, _ := rlp.EncodeToBytes(ServeHeaders(c, &GetBlockHeaders{Origin: HashOrNumber{Number: 0}, Amount: 1}))
		b.WriteMsg(offset+BlockHeadersMsg, resp) //nolint:errcheck
	}()
	if _, err := ReadHeaders(a, offset); err != nil {
		t.Fatal(err)
	}
}

func TestMsgNames(t *testing.T) {
	if MsgName(TransactionsMsg) != "TRANSACTIONS" {
		t.Error(MsgName(TransactionsMsg))
	}
	if MsgName(GetReceiptsMsg) != "GET_RECEIPTS" {
		t.Error(MsgName(GetReceiptsMsg))
	}
	if MsgName(0x99) != "UNKNOWN(0x99)" {
		t.Error(MsgName(0x99))
	}
}

func TestStatusRLPRoundTrip(t *testing.T) {
	s := &Status{
		ProtocolVersion: 63,
		NetworkID:       1,
		TD:              big.NewInt(123456789),
		BestHash:        chain.MainnetGenesisHash,
		GenesisHash:     chain.MainnetGenesisHash,
	}
	enc, err := rlp.EncodeToBytes(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Status
	if err := rlp.DecodeBytes(enc, &back); err != nil {
		t.Fatal(err)
	}
	if back.TD.Cmp(s.TD) != 0 || back.BestHash != s.BestHash {
		t.Errorf("got %+v", back)
	}
}
