package eth

import (
	"errors"
	"testing"

	"repro/internal/chain"
	"repro/internal/devp2p"
	"repro/internal/rlp"
)

func TestMsgNamesComplete(t *testing.T) {
	named := map[uint64]string{
		StatusMsg:          "STATUS",
		NewBlockHashesMsg:  "NEW_BLOCK_HASHES",
		TransactionsMsg:    "TRANSACTIONS",
		GetBlockHeadersMsg: "GET_BLOCK_HEADERS",
		BlockHeadersMsg:    "BLOCK_HEADERS",
		GetBlockBodiesMsg:  "GET_BLOCK_BODIES",
		BlockBodiesMsg:     "BLOCK_BODIES",
		NewBlockMsg:        "NEW_BLOCK",
		GetNodeDataMsg:     "GET_NODE_DATA",
		NodeDataMsg:        "NODE_DATA",
		GetReceiptsMsg:     "GET_RECEIPTS",
		ReceiptsMsg:        "RECEIPTS",
	}
	for code, want := range named {
		if got := MsgName(code); got != want {
			t.Errorf("MsgName(%#x) = %s, want %s", code, got, want)
		}
	}
}

func TestReadHeadersMessageBudget(t *testing.T) {
	a, b := newChanRW()
	go func() {
		// Only noise, never a response: the reader must give up.
		for i := 0; i < 40; i++ {
			b.WriteMsg(offset+TransactionsMsg, []byte{0xC0}) //nolint:errcheck
		}
	}()
	if _, err := ReadHeaders(a, offset); err == nil {
		t.Fatal("reader never gave up")
	}
}

func TestReadHeadersDisconnect(t *testing.T) {
	a, b := newChanRW()
	go devp2p.SendDisconnect(b, devp2p.DiscUselessPeer) //nolint:errcheck
	_, err := ReadHeaders(a, offset)
	var de devp2p.DisconnectError
	if !errors.As(err, &de) || de.Reason != devp2p.DiscUselessPeer {
		t.Fatalf("got %v", err)
	}
}

func TestReadStatusRejectsWrongCode(t *testing.T) {
	a, b := newChanRW()
	go b.WriteMsg(offset+TransactionsMsg, []byte{0xC0}) //nolint:errcheck
	if _, err := ReadStatus(a, offset); !errors.Is(err, ErrNoStatus) {
		t.Fatalf("got %v", err)
	}
}

func TestReadStatusRejectsGarbagePayload(t *testing.T) {
	a, b := newChanRW()
	go b.WriteMsg(offset+StatusMsg, []byte{0xFF, 0xFF, 0xFF}) //nolint:errcheck
	if _, err := ReadStatus(a, offset); err == nil {
		t.Fatal("garbage status accepted")
	}
}

func TestServeHeadersZeroAmount(t *testing.T) {
	c := chain.New(chain.Config{NetworkID: 1, GenesisSeed: "z", Length: 3})
	if hs := ServeHeaders(c, &GetBlockHeaders{Origin: HashOrNumber{Number: 0}, Amount: 0}); hs != nil {
		t.Fatal("zero amount returned headers")
	}
}

func TestServeHeadersReverseUnderflow(t *testing.T) {
	c := chain.New(chain.Config{NetworkID: 1, GenesisSeed: "u", Length: 3})
	hs := ServeHeaders(c, &GetBlockHeaders{Origin: HashOrNumber{Number: 1}, Amount: 10, Reverse: true})
	if len(hs) != 2 { // blocks 1, 0 — stop at genesis
		t.Fatalf("got %d headers", len(hs))
	}
}

func TestDAOForkSupportStrings(t *testing.T) {
	if DAOForkSupported.String() == "" || DAOForkOpposed.String() == "" || DAOForkUnknown.String() == "" {
		t.Fatal("empty stance strings")
	}
	if DAOForkSupported.String() == DAOForkOpposed.String() {
		t.Fatal("stances collide")
	}
}

func TestVerifyDAOForkPropagatesSendError(t *testing.T) {
	rw := failingRW{}
	if _, err := VerifyDAOFork(rw, offset); err == nil {
		t.Fatal("send error swallowed")
	}
}

type failingRW struct{}

func (failingRW) ReadMsg() (uint64, []byte, error) { return 0, nil, errors.New("closed") }
func (failingRW) WriteMsg(uint64, []byte) error    { return errors.New("closed") }

func TestHashOrNumberDecodeErrors(t *testing.T) {
	// A list is neither a hash nor a number.
	enc, _ := rlp.EncodeToBytes([]uint{1, 2})
	var h HashOrNumber
	if err := rlp.DecodeBytes(enc, &h); err == nil {
		t.Fatal("list accepted as HashOrNumber")
	}
}
