//go:build !race

// Allocation-regression pins for the STATUS round-trip. Excluded
// under the race detector, whose instrumentation changes allocation
// counts.
package eth

import (
	"math/big"
	"testing"

	"repro/internal/chain"
	"repro/internal/rlp"
)

func TestStatusAllocs(t *testing.T) {
	status := &Status{
		ProtocolVersion: uint32(Version63),
		NetworkID:       1,
		TD:              new(big.Int).SetBytes([]byte{0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc}),
		BestHash:        chain.Hash{1},
		GenesisHash:     chain.Hash{2},
	}

	buf := make([]byte, 0, 256)
	enc := testing.AllocsPerRun(200, func() {
		out, err := rlp.EncodeAppend(buf, status)
		if err != nil {
			t.Fatal(err)
		}
		_ = out
	})
	if enc > 0 {
		t.Errorf("status encode: %v allocs/op, want 0 (EncodeAppend into sized scratch)", enc)
	}

	encoded, err := rlp.EncodeToBytes(status)
	if err != nil {
		t.Fatal(err)
	}
	var dst Status
	dec := testing.AllocsPerRun(200, func() {
		if err := rlp.DecodeBytes(encoded, &dst); err != nil {
			t.Fatal(err)
		}
	})
	// Two allocations: the TD big.Int and its word backing. The
	// decoder never reuses a caller's big.Int (the reflection walker
	// doesn't either), so these are inherent to the decoded value.
	if dec > 2 {
		t.Errorf("status decode: %v allocs/op, want <= 2", dec)
	}
}
