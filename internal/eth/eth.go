// Package eth implements versions 62/63 of the Ethereum wire
// subprotocol — the 'eth' capability negotiated over DEVp2p (§2.3).
//
// Only the subset NodeFinder exercises is fully implemented as peer
// operations: the STATUS handshake and the GET_BLOCK_HEADERS /
// BLOCK_HEADERS exchange used for DAO-fork verification. The
// remaining message codes are defined so traffic models and decoders
// can classify them (Figures 2/3).
package eth

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"repro/internal/chain"
	"repro/internal/devp2p"
	"repro/internal/rlp"
)

// Protocol versions.
const (
	Version62 uint = 62
	Version63 uint = 63
)

// ProtocolName is the capability name announced in HELLO.
const ProtocolName = "eth"

// ProtocolLength is the number of message codes eth/63 reserves.
const ProtocolLength uint64 = 17

// Message codes, relative to the negotiated offset.
const (
	StatusMsg uint64 = iota
	NewBlockHashesMsg
	TransactionsMsg
	GetBlockHeadersMsg
	BlockHeadersMsg
	GetBlockBodiesMsg
	BlockBodiesMsg
	NewBlockMsg
	_ // 0x08-0x0c unused in 62/63
	_
	_
	_
	_
	GetNodeDataMsg // 0x0d (eth/63 fast sync)
	NodeDataMsg
	GetReceiptsMsg
	ReceiptsMsg
)

// MsgName returns a human-readable message name for traffic logs.
func MsgName(code uint64) string {
	switch code {
	case StatusMsg:
		return "STATUS"
	case NewBlockHashesMsg:
		return "NEW_BLOCK_HASHES"
	case TransactionsMsg:
		return "TRANSACTIONS"
	case GetBlockHeadersMsg:
		return "GET_BLOCK_HEADERS"
	case BlockHeadersMsg:
		return "BLOCK_HEADERS"
	case GetBlockBodiesMsg:
		return "GET_BLOCK_BODIES"
	case BlockBodiesMsg:
		return "BLOCK_BODIES"
	case NewBlockMsg:
		return "NEW_BLOCK"
	case GetNodeDataMsg:
		return "GET_NODE_DATA"
	case NodeDataMsg:
		return "NODE_DATA"
	case GetReceiptsMsg:
		return "GET_RECEIPTS"
	case ReceiptsMsg:
		return "RECEIPTS"
	default:
		return fmt.Sprintf("UNKNOWN(%#x)", code)
	}
}

// Status is the eth handshake message: the blockchain identity and
// head state a peer advertises.
type Status struct {
	ProtocolVersion uint32
	NetworkID       uint64
	TD              *big.Int
	BestHash        chain.Hash
	GenesisHash     chain.Hash
	Rest            []rlp.RawValue `rlp:"tail"`
}

// GetBlockHeaders requests a span of headers. Origin is either a
// block hash or a number.
type GetBlockHeaders struct {
	Origin  HashOrNumber
	Amount  uint64
	Skip    uint64
	Reverse bool
}

// HashOrNumber is the polymorphic origin field: encoded as a 32-byte
// hash or an integer.
type HashOrNumber struct {
	Hash   chain.Hash
	Number uint64
	IsHash bool
}

// EncodeRLP implements rlp.Encoder.
func (h *HashOrNumber) EncodeRLP(w io.Writer) error {
	var enc []byte
	var err error
	if h.IsHash {
		enc, err = rlp.EncodeToBytes(h.Hash)
	} else {
		enc, err = rlp.EncodeToBytes(h.Number)
	}
	if err != nil {
		return err
	}
	_, err = w.Write(enc)
	return err
}

// DecodeRLP implements rlp.Decoder.
func (h *HashOrNumber) DecodeRLP(s *rlp.Stream) error {
	_, size, err := s.Kind()
	if err != nil {
		return err
	}
	if size == 32 {
		h.IsHash = true
		var hash [32]byte
		if err := s.ReadBytes(hash[:]); err != nil {
			return err
		}
		h.Hash = chain.Hash(hash)
		return nil
	}
	h.IsHash = false
	h.Number, err = s.Uint64()
	return err
}

// Message-size bounds for untrusted input. A legitimate STATUS is
// under 200 bytes (the TD of a real chain fits in a dozen); a
// BLOCK_HEADERS response is bounded by the header count NodeFinder
// ever requests. Payloads beyond these are hostile padding and are
// rejected before RLP decoding.
const (
	MaxStatusSize  = 4096
	MaxHeadersSize = 1 << 19
)

// MaxHeadersServe caps how many headers one GET_BLOCK_HEADERS request
// can demand. Without it a peer's req.Amount of 2^64-1 walks the whole
// chain and builds the response slice to match — the serve-side twin
// of the MaxHeadersSize read cap.
const MaxHeadersServe = 1024

// Handshake errors, classified the way NodeFinder's logs need them.
var (
	ErrNetworkMismatch  = errors.New("eth: network ID mismatch")
	ErrGenesisMismatch  = errors.New("eth: genesis hash mismatch")
	ErrProtocolMismatch = errors.New("eth: protocol version mismatch")
	ErrNoStatus         = errors.New("eth: peer sent non-status message first")
	ErrMsgTooBig        = errors.New("eth: message exceeds size limit")
)

// SendStatus writes a STATUS message at the negotiated code offset.
func SendStatus(rw devp2p.MsgReadWriter, offset uint64, s *Status) error {
	return devp2p.WriteValue(rw, offset+StatusMsg, s)
}

// ReadStatus reads the peer's STATUS. A DISCONNECT in its place is
// surfaced as devp2p.DisconnectError.
func ReadStatus(rw devp2p.MsgReadWriter, offset uint64) (*Status, error) {
	code, payload, err := rw.ReadMsg()
	if err != nil {
		return nil, err
	}
	switch code {
	case devp2p.DiscMsg:
		return nil, devp2p.DisconnectError{Reason: devp2p.DecodeDisconnect(payload)}
	case offset + StatusMsg:
		if len(payload) > MaxStatusSize {
			return nil, fmt.Errorf("%w: status is %d bytes (max %d)", ErrMsgTooBig, len(payload), MaxStatusSize)
		}
		var s Status
		if err := rlp.DecodeBytes(payload, &s); err != nil {
			return nil, fmt.Errorf("eth: decoding status: %w", err)
		}
		return &s, nil
	default:
		return nil, fmt.Errorf("%w: code %#x", ErrNoStatus, code)
	}
}

// CheckCompatibility compares two statuses the way clients decide
// whether to keep a peer.
func CheckCompatibility(ours, theirs *Status) error {
	if ours.NetworkID != theirs.NetworkID {
		return fmt.Errorf("%w: ours %d, theirs %d", ErrNetworkMismatch, ours.NetworkID, theirs.NetworkID)
	}
	if ours.GenesisHash != theirs.GenesisHash {
		return fmt.Errorf("%w: ours %s, theirs %s", ErrGenesisMismatch, ours.GenesisHash.Short(), theirs.GenesisHash.Short())
	}
	if ours.ProtocolVersion != theirs.ProtocolVersion {
		return fmt.Errorf("%w: ours %d, theirs %d", ErrProtocolMismatch, ours.ProtocolVersion, theirs.ProtocolVersion)
	}
	return nil
}

// RequestHeaders sends GET_BLOCK_HEADERS.
func RequestHeaders(rw devp2p.MsgReadWriter, offset uint64, req *GetBlockHeaders) error {
	return devp2p.WriteValue(rw, offset+GetBlockHeadersMsg, req)
}

// ReadHeaders reads a BLOCK_HEADERS response, skipping unrelated
// broadcast messages (transactions, new blocks) that may interleave.
func ReadHeaders(rw devp2p.MsgReadWriter, offset uint64) ([]*chain.Header, error) {
	for i := 0; i < 32; i++ { // bounded tolerance for broadcast noise
		code, payload, err := rw.ReadMsg()
		if err != nil {
			return nil, err
		}
		switch code {
		case offset + BlockHeadersMsg:
			if len(payload) > MaxHeadersSize {
				return nil, fmt.Errorf("%w: headers response is %d bytes (max %d)", ErrMsgTooBig, len(payload), MaxHeadersSize)
			}
			var headers []*chain.Header
			if err := rlp.DecodeBytes(payload, &headers); err != nil {
				return nil, fmt.Errorf("eth: decoding headers: %w", err)
			}
			return headers, nil
		case devp2p.DiscMsg:
			return nil, devp2p.DisconnectError{Reason: devp2p.DecodeDisconnect(payload)}
		case devp2p.PingMsg:
			if err := devp2p.SendPong(rw); err != nil {
				return nil, err
			}
		default:
			// Ignore broadcast traffic while waiting.
		}
	}
	return nil, errors.New("eth: no header response within message budget")
}

// ServeHeaders answers one GET_BLOCK_HEADERS request from c. The
// answered count is clamped to MaxHeadersServe regardless of what the
// request demands.
func ServeHeaders(c *chain.Chain, req *GetBlockHeaders) []*chain.Header {
	amount := req.Amount
	if amount > MaxHeadersServe {
		amount = MaxHeadersServe
	}
	if amount == 0 {
		return nil
	}
	var start *chain.Header
	if req.Origin.IsHash {
		start = c.HeaderByHash(req.Origin.Hash)
	} else {
		start = c.HeaderByNumber(req.Origin.Number)
	}
	if start == nil {
		return nil
	}
	headers := []*chain.Header{start}
	step := int64(req.Skip) + 1
	cur := start.Number.Int64()
	for uint64(len(headers)) < amount {
		if req.Reverse {
			cur -= step
		} else {
			cur += step
		}
		if cur < 0 {
			break
		}
		h := c.HeaderByNumber(uint64(cur))
		if h == nil {
			break
		}
		headers = append(headers, h)
	}
	return headers
}

// VerifyDAOFork performs NodeFinder's fork check: request the DAO
// fork header and inspect its extra-data. The return value
// distinguishes pro-fork (Mainnet), anti-fork (Classic), and unknown
// (peer has not reached the fork block).
type DAOForkSupport int

// Fork stances.
const (
	DAOForkUnknown DAOForkSupport = iota
	DAOForkSupported
	DAOForkOpposed
)

func (s DAOForkSupport) String() string {
	switch s {
	case DAOForkSupported:
		return "supports DAO fork"
	case DAOForkOpposed:
		return "opposes DAO fork"
	default:
		return "DAO fork stance unknown"
	}
}

// VerifyDAOFork runs the request/response round.
func VerifyDAOFork(rw devp2p.MsgReadWriter, offset uint64) (DAOForkSupport, error) {
	req := &GetBlockHeaders{
		Origin: HashOrNumber{Number: chain.DAOForkBlock},
		Amount: 1,
	}
	if err := RequestHeaders(rw, offset, req); err != nil {
		return DAOForkUnknown, err
	}
	headers, err := ReadHeaders(rw, offset)
	if err != nil {
		return DAOForkUnknown, err
	}
	if len(headers) == 0 {
		return DAOForkUnknown, nil
	}
	if headers[0].SupportsDAOFork() {
		return DAOForkSupported, nil
	}
	return DAOForkOpposed, nil
}
