package simnet_test

import (
	"math/rand"
	"net"
	"testing"
	"time"

	"repro/internal/crypto/secp256k1"
	"repro/internal/devp2p"
	"repro/internal/enode"
	"repro/internal/eth"
	"repro/internal/faultnet"
	"repro/internal/metrics"
	"repro/internal/nodefinder"
	"repro/internal/nodefinder/mlog"
	"repro/internal/simnet"
	"repro/internal/testutil/leakcheck"
)

func wireWorld(t *testing.T, seed int64, reg *metrics.Registry) *simnet.World {
	t.Helper()
	cfg := simnet.DefaultConfig(seed)
	cfg.BaseNodes = 120
	cfg.AbusiveIPs = 0
	cfg.UnreachableFraction = 0
	cfg.WireFidelity = true
	cfg.Metrics = reg
	w := simnet.NewWorld(cfg)
	t.Cleanup(w.CloseWire)
	return w
}

func wireKey(t *testing.T, seed int64) *secp256k1.PrivateKey {
	t.Helper()
	k, err := secp256k1.GenerateKey(rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func wireDialer(t *testing.T, w *simnet.World, budget time.Duration) *nodefinder.RealDialer {
	t.Helper()
	return &nodefinder.RealDialer{
		Key: wireKey(t, 4242),
		Hello: devp2p.Hello{
			Version:    devp2p.Version,
			Name:       "NodeFinder/wire",
			Caps:       []devp2p.Cap{{Name: "eth", Version: 62}, {Name: "eth", Version: 63}},
			ListenPort: 30303,
		},
		DialTimeout: time.Second,
		Budget:      budget,
		CheckDAO:    true,
		DialFunc:    w.DialWire,
	}
}

func dialOne(t *testing.T, d *nodefinder.RealDialer, n *enode.Node) *nodefinder.DialResult {
	t.Helper()
	ch := make(chan *nodefinder.DialResult, 1)
	d.Dial(n, mlog.ConnDynamicDial, func(res *nodefinder.DialResult) { ch <- res })
	select {
	case res := <-ch:
		return res
	case <-time.After(30 * time.Second):
		t.Fatal("dial did not complete")
		return nil
	}
}

// TestPromotedHonestDial promotes an honest Mainnet node and runs the
// real establishment chain against it end to end: RLPx with the
// node's minted identity, HELLO, STATUS, and the DAO-fork header
// check — the full path a live crawl takes, with zero sockets.
func TestPromotedHonestDial(t *testing.T) {
	leakcheck.Check(t)
	reg := metrics.New()
	w := wireWorld(t, 7, reg)
	now := w.Clock.Now()

	var target *simnet.SimNode
	for _, n := range w.Nodes {
		if n.Service == simnet.SvcEth && !n.Hostile && n.Network != nil &&
			n.Network.NetworkID == 1 && n.Network.DAOFork && n.OnlineAt(now) {
			target = n
			break
		}
	}
	if target == nil {
		t.Fatal("no online mainnet node in world")
	}
	target.Occupancy = 0 // this test wants the full chain, not a peer-limit draw

	res := dialOne(t, wireDialer(t, w, 10*time.Second), target.Node)
	if res.Err != nil {
		t.Fatalf("dial failed: %v", res.Err)
	}
	if class := nodefinder.OutcomeClass(res); class != "eth-handshake" {
		t.Fatalf("outcome %q, want eth-handshake", class)
	}
	if res.Hello == nil || res.Hello.ID != target.Node.ID {
		t.Fatalf("hello identity mismatch: %+v", res.Hello)
	}
	if res.Status == nil || res.Status.NetworkID != 1 {
		t.Fatalf("status mismatch: %+v", res.Status)
	}
	if !res.DAOChecked {
		t.Fatal("DAO fork was not checked against the promoted node")
	}
	if res.DAOFork != eth.DAOForkSupported && res.DAOFork != eth.DAOForkUnknown {
		t.Fatalf("mainnet node classified %v", res.DAOFork)
	}

	// The connection is over: the node must be demoted.
	waitDemoted(t, w, 0)
	snap := reg.Snapshot()
	if p, d := snap.Counter("simnet.promotions"), snap.Counter("simnet.demotions"); p != 1 || d != 1 {
		t.Fatalf("promotions=%d demotions=%d, want 1/1", p, d)
	}
}

// TestPromotedOfflineAndUnknownDials pins the analytic failure shapes:
// addresses outside the world refuse, NAT'd nodes time out, offline
// nodes refuse — all without promoting anything.
func TestPromotedOfflineAndUnknownDials(t *testing.T) {
	leakcheck.Check(t)
	reg := metrics.New()
	w := wireWorld(t, 11, reg)
	d := wireDialer(t, w, time.Second)

	stranger := enode.New(enode.RandomID(rand.New(rand.NewSource(1))), net.IP{10, 9, 9, 9}, 30303, 30303)
	if res := dialOne(t, d, stranger); nodefinder.OutcomeClass(res) != "tcp-refused" {
		t.Fatalf("unknown address: %v", res.Err)
	}

	nat := w.Nodes[0]
	nat.Reachable = false
	if res := dialOne(t, d, nat.Node); nodefinder.OutcomeClass(res) != "tcp-timeout" {
		t.Fatalf("NAT'd node: %v", res.Err)
	}

	if got := reg.Snapshot().Counter("simnet.promotions"); got != 0 {
		t.Fatalf("analytic failures promoted %d nodes", got)
	}
}

// TestPromotedHostileTaxonomy projects every faultnet attack onto
// promoted nodes and pins each to its bucket in the error taxonomy —
// the same contract TestHostileTaxonomy pins for listener-backed
// hostile servers, now with the attack riding an in-memory promotion.
func TestPromotedHostileTaxonomy(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	leakcheck.Check(t, leakcheck.Window(10*time.Second))
	reg := metrics.New()
	w := wireWorld(t, 23, reg)
	now := w.Clock.Now()

	cases := []struct {
		kind    faultnet.HostileKind
		classes []string
	}{
		{faultnet.HostileNeverAck, []string{"handshake-timeout"}},
		{faultnet.HostileHangAfterHandshake, []string{"tcp-timeout", "handshake-timeout"}},
		{faultnet.HostileWrongMAC, []string{"rlpx-bad-mac"}},
		{faultnet.HostileGiantFrame, []string{"frame-oversize"}},
		{faultnet.HostileOversizedHello, []string{"msg-oversize"}},
		{faultnet.HostileBadRLPHello, []string{"rlp-malformed"}},
		{faultnet.HostileSnappyBomb, []string{"snappy-corrupt"}},
		{faultnet.HostileStatusFlood, []string{"eth-handshake"}},
		// No TCP under the pipe: the reset degrades to an EOF during
		// the RLPx handshake rather than an ECONNRESET.
		{faultnet.HostileImmediateReset, []string{"tcp-reset", "rlpx-error", "error-other"}},
		{faultnet.HostileGarbage, []string{"rlpx-bad-handshake", "rlpx-error"}},
	}

	// Conscript one online node per attack kind.
	var conscripts []*simnet.SimNode
	for _, n := range w.Nodes {
		if n.OnlineAt(now) {
			conscripts = append(conscripts, n)
		}
		if len(conscripts) == len(cases) {
			break
		}
	}
	if len(conscripts) < len(cases) {
		t.Fatalf("only %d online nodes for %d attacks", len(conscripts), len(cases))
	}

	d := wireDialer(t, w, 1500*time.Millisecond)
	for i, tc := range cases {
		n := conscripts[i]
		n.Hostile = true
		n.HostileKind = tc.kind
		res := dialOne(t, d, n.Node)
		class := nodefinder.OutcomeClass(res)
		matched := false
		for _, want := range tc.classes {
			if class == want {
				matched = true
			}
		}
		if !matched {
			t.Errorf("%v classified as %q (err=%v), want one of %v", tc.kind, class, res.Err, tc.classes)
		}
	}
	waitDemoted(t, w, 0)
}

// TestPromoteDemoteChurn hammers the promotion lifecycle: many
// sequential dials against a mixed honest/hostile population, then a
// CloseWire, must leave zero promoted connections and zero goroutines.
func TestPromoteDemoteChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	leakcheck.Check(t, leakcheck.Window(10*time.Second))
	reg := metrics.New()
	w := wireWorld(t, 31, reg)
	now := w.Clock.Now()
	d := wireDialer(t, w, 500*time.Millisecond)

	dials := 0
	for _, n := range w.Nodes {
		if !n.OnlineAt(now) {
			continue
		}
		if res := dialOne(t, d, n.Node); res == nil {
			t.Fatal("nil result")
		}
		dials++
		if dials == 40 {
			break
		}
	}
	w.CloseWire()
	if active := w.PromotedActive(); active != 0 {
		t.Fatalf("%d connections still promoted after CloseWire", active)
	}
	snap := reg.Snapshot()
	p, dem := snap.Counter("simnet.promotions"), snap.Counter("simnet.demotions")
	if p == 0 || p != dem {
		t.Fatalf("promotions=%d demotions=%d, want equal and non-zero", p, dem)
	}
	if p > uint64(dials) {
		t.Fatalf("%d promotions for %d dials", p, dials)
	}
}

// waitDemoted polls briefly for the serving goroutines' deferred
// demotion to land; the dialer's Close returns before the server side
// finishes observing it.
func waitDemoted(t *testing.T, w *simnet.World, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if w.PromotedActive() == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("promoted connections stuck at %d, want %d", w.PromotedActive(), want)
}
