package simnet

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/devp2p"
)

// The §3 case study: the authors instrumented a default Geth 1.7.3
// and a default Parity 1.7.9 for a week and recorded message traffic
// (Figures 2-3), peer convergence (Figure 4), and disconnect reasons
// (Table 1). This file reproduces that experiment as a calibrated
// event-driven model of one observer client embedded in the noisy
// network; the rates derive from the paper's published observations
// and the behavioral differences it documents:
//
//   - Geth broadcasts transactions to ALL peers; Parity to √n peers.
//   - Geth's peer limit is 25; Parity's is 50.
//   - Parity never sends Subprotocol error (codes past 0x0b are
//     "Unknown" and unimplemented).
//   - Both clients sit at their peer cap almost all the time (99.1%
//     and 91.5%), so inbound connections overwhelmingly bounce with
//     Too many peers.

// ObserverConfig parameterizes the case study client.
type ObserverConfig struct {
	Client   ClientType
	MaxPeers int
	Duration time.Duration
	Seed     int64
	// NetworkTxRate is the Mainnet transaction broadcast rate the
	// observer's peers relay (≈7 tx/s in early 2018).
	NetworkTxRate float64
	// IncomingRate is inbound connection attempts per second; the
	// paper's Geth sent ≈2.07M Too-many-peers DISCONNECTs over 7
	// days ≈ 3.4/s.
	IncomingRate float64
	// DialRate is the client's own outbound dial rate per hour
	// (≈180 for a default Geth).
	DialRate float64
	// BlipInterval is the mean time between client blips (restarts,
	// network hiccups) that drop all peers; RefillMinutes is how long
	// a blip suppresses inbound connections. These produce the
	// sub-100% occupancy of Figure 4 (Geth 99.1%, Parity 91.5% —
	// Parity restarts far more often on its weekly release cadence).
	BlipInterval  time.Duration
	RefillMinutes int
}

// DefaultGethObserver mirrors the §3 Geth instance.
func DefaultGethObserver(seed int64) ObserverConfig {
	return ObserverConfig{
		Client:        ClientGeth,
		MaxPeers:      25,
		Duration:      7 * 24 * time.Hour,
		Seed:          seed,
		NetworkTxRate: 7.0,
		IncomingRate:  3.4,
		DialRate:      180,
		BlipInterval:  20 * time.Hour,
		RefillMinutes: 8,
	}
}

// DefaultParityObserver mirrors the §3 Parity instance.
func DefaultParityObserver(seed int64) ObserverConfig {
	return ObserverConfig{
		Client:        ClientParity,
		MaxPeers:      50,
		Duration:      7 * 24 * time.Hour,
		Seed:          seed,
		NetworkTxRate: 7.0,
		IncomingRate:  2.8,
		DialRate:      200,
		BlipInterval:  2 * time.Hour,
		RefillMinutes: 18,
	}
}

// PeerSample is one Figure 4 data point.
type PeerSample struct {
	At    time.Duration
	Peers int
}

// MsgSample is one Figure 2/3 series point: messages per hour by
// type at a point in time.
type MsgSample struct {
	At      time.Duration
	PerHour map[string]float64
}

// CaseStudyResult aggregates the §3 outputs.
type CaseStudyResult struct {
	Config     ObserverConfig
	PeerSeries []PeerSample
	MsgSeries  []MsgSample
	// Totals by message name.
	MsgRecv map[string]uint64
	MsgSent map[string]uint64
	// Table 1.
	DiscRecv map[devp2p.DisconnectReason]uint64
	DiscSent map[devp2p.DisconnectReason]uint64
	// TimeToFull is how long the client took to reach its peer cap.
	TimeToFull time.Duration
	// OccupancyFraction is the share of samples at the peer cap.
	OccupancyFraction float64
}

// RunCaseStudy executes the observer model.
func RunCaseStudy(cfg ObserverConfig) *CaseStudyResult {
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &CaseStudyResult{
		Config:   cfg,
		MsgRecv:  map[string]uint64{},
		MsgSent:  map[string]uint64{},
		DiscRecv: map[devp2p.DisconnectReason]uint64{},
		DiscSent: map[devp2p.DisconnectReason]uint64{},
	}

	const step = time.Minute
	steps := int(cfg.Duration / step)
	peers := 0
	full := false
	fullSamples, samples := 0, 0
	syncing := true
	syncBlocksLeft := 5_440_000.0 // initial full-sync backlog
	cooldown := 0                 // minutes left in a blip's refill window
	blipP := 0.0
	if cfg.BlipInterval > 0 {
		blipP = float64(step) / float64(cfg.BlipInterval)
	}

	// Per-peer mean session ≈ 6 h ⇒ departure prob per peer-minute.
	departP := float64(step) / float64(6*time.Hour)

	for i := 0; i < steps; i++ {
		at := time.Duration(i) * step

		// Client blips: a restart or network hiccup drops every peer
		// and suppresses inbound refills briefly.
		if full && blipP > 0 && rng.Float64() < blipP {
			peers = 0
			cooldown = 1 + rng.Intn(cfg.RefillMinutes)
		}

		// Outbound dials this minute.
		dials := poisson(rng, cfg.DialRate/60)
		for d := 0; d < dials; d++ {
			f := rng.Float64()
			switch {
			case f < 0.72:
				// Target full: Too many peers received. Parity's
				// higher share (95.19%) reflects its larger, busier
				// dial set.
				res.DiscRecv[devp2p.DiscTooManyPeers]++
			case f < 0.80 && cfg.Client == ClientGeth:
				// Subprotocol error from incompatible peers; Geth
				// receives disproportionately many (§3 obs. 4).
				res.DiscRecv[devp2p.DiscSubprotocolError]++
			case f < 0.82:
				res.DiscRecv[devp2p.DiscRequested]++
			case f < 0.825:
				res.DiscRecv[devp2p.DiscUselessPeer]++
			default:
				if peers < cfg.MaxPeers {
					peers++
				}
			}
		}

		// Departures happen before this minute's inbound wave so
		// freed slots refill within the same minute, matching the
		// second-scale refill the paper observed (99.1% occupancy).
		for p := 0; p < peers; p++ {
			if rng.Float64() < departP {
				peers--
				res.DiscRecv[devp2p.DiscRequested]++
			}
		}

		// Inbound connection attempts (suppressed while a blip's
		// refill window is open).
		inbound := poisson(rng, cfg.IncomingRate*60)
		if cooldown > 0 {
			cooldown--
			inbound = 0
		}
		for a := 0; a < inbound; a++ {
			if peers >= cfg.MaxPeers {
				res.DiscSent[devp2p.DiscTooManyPeers]++
				res.MsgSent["DISCONNECT"]++
				continue
			}
			// A free slot: most joiners are compatible.
			f := rng.Float64()
			switch {
			case f < 0.90:
				peers++
			case f < 0.93 && cfg.Client == ClientGeth:
				// Geth rejects bad-genesis peers with Subprotocol
				// error; Parity does not implement sending it.
				res.DiscSent[devp2p.DiscSubprotocolError]++
			case f < 0.93:
				// Parity classifies the same peers as useless.
				res.DiscSent[devp2p.DiscUselessPeer]++
			case f < 0.96 && cfg.Client == ClientParity:
				res.DiscSent[devp2p.DiscUselessPeer]++
			case f < 0.97:
				res.DiscSent[devp2p.DiscRequested]++
			case f < 0.98:
				res.DiscSent[devp2p.DiscReadTimeout]++
			default:
				peers++
			}
		}

		if !full && peers >= cfg.MaxPeers {
			full = true
			res.TimeToFull = at + step
		}
		samples++
		if peers >= cfg.MaxPeers {
			fullSamples++
		}

		// Message traffic for this minute.
		minuteMsgs := map[string]float64{}
		if syncing && peers > 0 {
			// Initial blockchain download: header/body/receipt
			// requests dominate. ≈1,100 blocks/min with 192-block
			// response batches.
			blocks := 1100.0
			syncBlocksLeft -= blocks
			reqs := blocks / 192 * float64(minInt(peers, 16))
			minuteMsgs["GET_BLOCK_HEADERS"] += reqs
			minuteMsgs["BLOCK_HEADERS"] += reqs
			minuteMsgs["GET_BLOCK_BODIES"] += reqs
			minuteMsgs["BLOCK_BODIES"] += reqs
			if syncBlocksLeft <= 0 {
				syncing = false
			}
		}
		if !syncing && peers > 0 {
			// TRANSACTIONS dominate after sync (§3 obs. 2). Received:
			// every peer relays per its own client policy; assume the
			// peer mix mirrors Table 4 (77% Geth broadcast, 17%
			// Parity √n). Sent: the observer's own policy.
			txs := cfg.NetworkTxRate * 60
			gethPeers := float64(peers) * 0.77
			parityPeers := float64(peers) * 0.17
			otherPeers := float64(peers) * 0.06
			// A Parity peer with ~50 peers relays to √50/50 ≈ 14% of
			// them.
			recvTx := txs * (gethPeers + parityPeers*0.14 + otherPeers*0.5)
			minuteMsgs["TRANSACTIONS"] += recvTx

			var sentTx float64
			if cfg.Client == ClientGeth {
				sentTx = txs * float64(peers)
			} else {
				sentTx = txs * math.Sqrt(float64(peers))
			}
			res.MsgSent["TRANSACTIONS"] += uint64(sentTx)

			// Block announcements every ~15s from a few peers.
			minuteMsgs["NEW_BLOCK_HASHES"] += 4 * math.Min(float64(peers), 8)
			minuteMsgs["NEW_BLOCK"] += 4
			// Keepalives.
			minuteMsgs["PING"] += float64(peers)
			res.MsgSent["PONG"] += uint64(peers)
		}
		for name, v := range minuteMsgs {
			res.MsgRecv[name] += uint64(v)
		}

		// Sample the series every 30 minutes.
		if i%30 == 0 {
			res.PeerSeries = append(res.PeerSeries, PeerSample{At: at, Peers: peers})
			perHour := map[string]float64{}
			for name, v := range minuteMsgs {
				perHour[name] = v * 60
			}
			res.MsgSeries = append(res.MsgSeries, MsgSample{At: at, PerHour: perHour})
		}
	}
	res.OccupancyFraction = float64(fullSamples) / float64(samples)
	return res
}

// poisson draws a Poisson-distributed count with the given mean.
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		// Normal approximation for large means.
		v := mean + math.Sqrt(mean)*rng.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
