package simnet

import (
	"testing"
	"time"

	"repro/internal/devp2p"
	"repro/internal/enode"
	"repro/internal/faultnet"
	"repro/internal/metrics"
	"repro/internal/nodefinder"
	"repro/internal/nodefinder/mlog"
	"repro/internal/testutil/leakcheck"
)

func smallWorld(seed int64, nodes int) *World {
	cfg := DefaultConfig(seed)
	cfg.BaseNodes = nodes
	cfg.AbusiveIPs = 2
	cfg.AbusiveRate = 10 * time.Minute
	return NewWorld(cfg)
}

func TestPopulationShape(t *testing.T) {
	leakcheck.Check(t)
	w := smallWorld(1, 2000)
	svc := map[Service]int{}
	clients := map[ClientType]int{}
	mainnet, reachable := 0, 0
	for _, n := range w.Nodes {
		svc[n.Service]++
		if n.Service == SvcEth {
			clients[n.Client]++
			if n.Network == w.Mainnet {
				mainnet++
			}
		}
		if n.Reachable {
			reachable++
		}
	}
	total := len(w.Nodes)
	ethShare := float64(svc[SvcEth]) / float64(total)
	if ethShare < 0.91 || ethShare > 0.97 {
		t.Errorf("eth share %.3f, want ≈0.94", ethShare)
	}
	gethShare := float64(clients[ClientGeth]) / float64(svc[SvcEth])
	if gethShare < 0.72 || gethShare > 0.81 {
		t.Errorf("geth share %.3f, want ≈0.766", gethShare)
	}
	mainShare := float64(mainnet) / float64(svc[SvcEth])
	if mainShare < 0.50 || mainShare > 0.61 {
		t.Errorf("mainnet share %.3f, want ≈0.55", mainShare)
	}
	reachShare := float64(reachable) / float64(total)
	if reachShare < 0.40 || reachShare > 0.51 {
		t.Errorf("reachable share %.3f, want ≈0.45", reachShare)
	}
}

func TestAbusiveGenerators(t *testing.T) {
	leakcheck.Check(t)
	w := smallWorld(2, 100)
	before := len(w.Nodes)
	w.Clock.Advance(12 * time.Hour)
	after := len(w.Nodes)
	minted := after - before
	// 2 IPs minting "every 30 minutes or faster" (§5.4): with a
	// 10-minute configured rate, ≈8/hour/IP.
	if minted < 60 || minted > 300 {
		t.Fatalf("minted %d abusive identities in 12h", minted)
	}
	count := 0
	for _, n := range w.Nodes[before:] {
		if !n.Abusive {
			t.Fatal("minted node not marked abusive")
		}
		if w.ClientNameAt(n, w.Clock.Now()) != "ethereumjs-devp2p/v1.0.0" {
			t.Fatal("abusive node has wrong client string")
		}
		if n.Died.Sub(n.Born) > 30*time.Minute {
			t.Fatal("abusive identity lives too long")
		}
		count++
	}
	// All minted nodes come from the registered abusive IPs.
	ipSet := map[string]bool{}
	for _, ip := range w.AbusiveAddrs {
		ipSet[ip.String()] = true
	}
	for _, n := range w.Nodes[before:] {
		if !ipSet[n.Node.IP.String()] {
			t.Fatal("abusive node from unregistered IP")
		}
	}
}

func TestVersionLifecycle(t *testing.T) {
	leakcheck.Check(t)
	w := smallWorld(3, 500)
	early := w.Cfg.Start
	late := early.Add(80 * 24 * time.Hour)
	upgraded := 0
	checked := 0
	for _, n := range w.Nodes {
		if n.Client != ClientGeth || n.PinnedVersion != "" {
			continue
		}
		v1 := w.ClientNameAt(n, early)
		v2 := w.ClientNameAt(n, late)
		checked++
		if v1 != v2 {
			upgraded++
		}
	}
	if checked == 0 {
		t.Fatal("no geth nodes")
	}
	if float64(upgraded)/float64(checked) < 0.5 {
		t.Errorf("only %d/%d geth nodes upgraded over 80 days", upgraded, checked)
	}
}

func TestFreshnessModel(t *testing.T) {
	leakcheck.Check(t)
	w := smallWorld(4, 2000)
	now := w.Cfg.Start.Add(5 * 24 * time.Hour)
	head := w.Mainnet.HeadAt(now)
	stale, synced, stuckByz := 0, 0, 0
	for _, n := range w.Nodes {
		if n.Service != SvcEth || n.Network != w.Mainnet {
			continue
		}
		best := n.BestBlockAt(now)
		switch {
		case best == 4_370_001:
			stuckByz++
			stale++
		case head-best > 100:
			stale++
		default:
			synced++
		}
	}
	total := stale + synced
	frac := float64(stale) / float64(total)
	if frac < 0.25 || frac > 0.42 {
		t.Errorf("stale fraction %.3f, want ≈0.33", frac)
	}
	if stuckByz == 0 {
		t.Error("no Byzantium-stuck nodes")
	}
}

// crawl runs a NodeFinder against a world for a virtual duration.
func crawl(t *testing.T, w *World, d time.Duration, incomingMean time.Duration) (*nodefinder.Finder, *mlog.Collector) {
	t.Helper()
	col := mlog.NewCollector()
	f, err := nodefinder.New(nodefinder.Config{
		Clock:     w.Clock,
		Discovery: w.NewDiscovery(100),
		Dialer:    w.NewDialer(200),
		Log:       col,
		Seed:      300,
	})
	if err != nil {
		t.Fatal(err)
	}
	var gen *IncomingGenerator
	if incomingMean > 0 {
		gen = w.StartIncoming(f, incomingMean, 400)
	}
	f.Start()
	w.Clock.Advance(d)
	f.Stop()
	if gen != nil {
		gen.Stop()
	}
	return f, col
}

func TestCrawlDiscoversPopulation(t *testing.T) {
	leakcheck.Check(t)
	w := smallWorld(5, 400)
	f, col := crawl(t, w, 8*time.Hour, 30*time.Second)
	st := f.Stats()
	if st.DiscoveryAttempts == 0 || st.DynamicDials == 0 {
		t.Fatalf("no activity: %+v", st)
	}
	if st.SuccessfulConns == 0 {
		t.Fatal("no successful connections")
	}
	// The census must include Too many peers rejections, successful
	// HELLOs with client names, STATUS messages, and DAO results.
	var tooMany, hellos, statuses, dao, incoming int
	for _, e := range col.Entries() {
		if e.DisconnectReason != nil && *e.DisconnectReason == uint64(devp2p.DiscTooManyPeers) {
			tooMany++
		}
		if e.Hello != nil {
			hellos++
		}
		if e.Status != nil {
			statuses++
		}
		if e.DAOFork == "supported" {
			dao++
		}
		if e.ConnType == mlog.ConnIncoming {
			incoming++
		}
	}
	if tooMany == 0 || hellos == 0 || statuses == 0 || dao == 0 || incoming == 0 {
		t.Fatalf("census gaps: tooMany=%d hellos=%d statuses=%d dao=%d incoming=%d",
			tooMany, hellos, statuses, dao, incoming)
	}
}

// TestHostilePopulationCensus runs a crawl over a world where a
// third of the population mounts faultnet's wire attacks, and checks
// that (a) the honest census still forms, (b) every hostile failure
// surfaces in the same metrics taxonomy the real transport feeds,
// and (c) no hostile node (save the honestly-handshaking STATUS
// flooder) ever contributes a verified STATUS to the census.
func TestHostilePopulationCensus(t *testing.T) {
	leakcheck.Check(t)
	cfg := DefaultConfig(8)
	cfg.BaseNodes = 500
	cfg.AbusiveIPs = 1
	cfg.HostileFraction = 0.35

	w := NewWorld(cfg)
	hostileCount := 0
	for _, n := range w.Nodes {
		if n.Hostile {
			hostileCount++
		}
	}
	if frac := float64(hostileCount) / float64(len(w.Nodes)); frac < 0.28 || frac > 0.42 {
		t.Fatalf("hostile fraction %.3f, want ≈0.35", frac)
	}

	reg := metrics.New()
	col := mlog.NewCollector()
	dialer := w.NewDialer(200)
	dialer.Metrics = nodefinder.NewDialerMetrics(reg)
	f, err := nodefinder.New(nodefinder.Config{
		Clock:     w.Clock,
		Discovery: w.NewDiscovery(100),
		Dialer:    dialer,
		Log:       col,
		Metrics:   reg,
		Seed:      300,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	w.Clock.Advance(12 * time.Hour)
	f.Stop()

	honest, hostileStatus := 0, 0
	for _, e := range col.Entries() {
		n := w.NodeByID(mustID(t, e.NodeID))
		if n == nil {
			continue
		}
		if !n.Hostile && e.Status != nil {
			honest++
		}
		if n.Hostile && e.Status != nil && n.HostileKind != faultnet.HostileStatusFlood {
			hostileStatus++
		}
	}
	if honest == 0 {
		t.Fatal("hostile minority starved the honest census entirely")
	}
	if hostileStatus != 0 {
		t.Errorf("%d verified STATUS entries from hostile nodes", hostileStatus)
	}

	snap := reg.Snapshot()
	for _, class := range []string{
		"rlpx-bad-mac", "frame-oversize", "msg-oversize", "snappy-corrupt",
		"rlp-malformed", "handshake-timeout", "tcp-reset", "rlpx-error",
	} {
		if snap.Counter("finder.conn_errors{"+class+"}") == 0 {
			t.Errorf("simulated attacks never surfaced class %q", class)
		}
	}
}

func TestUnreachableOnlyViaIncoming(t *testing.T) {
	leakcheck.Check(t)
	w := smallWorld(6, 300)
	_, col := crawl(t, w, 6*time.Hour, 20*time.Second)
	unreachableSeen := map[string]mlog.ConnType{}
	for _, e := range col.Entries() {
		if e.Hello == nil {
			continue
		}
		n := w.NodeByID(mustID(t, e.NodeID))
		if n != nil && !n.Reachable {
			unreachableSeen[e.NodeID] = e.ConnType
		}
	}
	if len(unreachableSeen) == 0 {
		t.Fatal("no unreachable nodes seen at all")
	}
	for id, ct := range unreachableSeen {
		if ct != mlog.ConnIncoming {
			t.Fatalf("unreachable node %s seen via %s", id[:8], ct)
		}
	}
}

func TestEthernodesRelationship(t *testing.T) {
	leakcheck.Check(t)
	w := smallWorld(7, 1200)
	from := w.Cfg.Start
	en := w.Ethernodes(DefaultEthernodesConfig(9), from)
	truth := w.MainnetGroundTruth(from, from.Add(24*time.Hour))
	if len(en.Listed) == 0 || len(truth) == 0 {
		t.Fatal("empty sets")
	}
	// EN lists more than the genuine Mainnet subset it covers, and
	// covers well under all of the ground truth.
	if len(en.Listed) < len(truth)/3 {
		t.Errorf("EN list suspiciously small: %d vs truth %d", len(en.Listed), len(truth))
	}
	truthSet := map[string]bool{}
	for _, id := range truth {
		truthSet[id.String()] = true
	}
	genuine := 0
	for _, id := range en.Listed {
		if truthSet[id.String()] {
			genuine++
		}
	}
	if genuine == len(truth) {
		t.Error("EN implausibly covers the full ground truth")
	}
	if genuine == 0 {
		t.Error("EN covers none of the ground truth")
	}
}

func TestCaseStudyGeth(t *testing.T) {
	leakcheck.Check(t)
	res := RunCaseStudy(DefaultGethObserver(1))
	// Figure 4: converge to 25 peers within minutes; ≥99% occupancy.
	if res.TimeToFull > 30*time.Minute {
		t.Errorf("geth took %v to fill", res.TimeToFull)
	}
	if res.OccupancyFraction < 0.97 {
		t.Errorf("occupancy %.3f, want ≈0.991", res.OccupancyFraction)
	}
	// Table 1: Too many peers dominates both directions.
	if frac := discFrac(res.DiscRecv, devp2p.DiscTooManyPeers); frac < 0.6 {
		t.Errorf("recv Too many peers share %.2f", frac)
	}
	if frac := discFrac(res.DiscSent, devp2p.DiscTooManyPeers); frac < 0.9 {
		t.Errorf("sent Too many peers share %.2f", frac)
	}
	// Sent disconnects vastly outnumber received (incoming pressure).
	if total(res.DiscSent) < 10*total(res.DiscRecv) {
		t.Errorf("sent %d vs recv %d", total(res.DiscSent), total(res.DiscRecv))
	}
	// Figure 2: TRANSACTIONS dominate received traffic post-sync.
	if res.MsgRecv["TRANSACTIONS"] < res.MsgRecv["BLOCK_HEADERS"] {
		t.Error("transactions do not dominate")
	}
	// Geth sends more transactions than it receives per-peer policy
	// would for Parity.
	if res.MsgSent["TRANSACTIONS"] == 0 {
		t.Error("no transactions sent")
	}
}

func TestCaseStudyParityDifferences(t *testing.T) {
	leakcheck.Check(t)
	geth := RunCaseStudy(DefaultGethObserver(2))
	parity := RunCaseStudy(DefaultParityObserver(2))
	// Parity converges to 50 peers.
	maxPeers := 0
	for _, s := range parity.PeerSeries {
		if s.Peers > maxPeers {
			maxPeers = s.Peers
		}
	}
	if maxPeers != 50 {
		t.Errorf("parity max peers %d", maxPeers)
	}
	// Parity never sends Subprotocol error (§3 obs. 4).
	if parity.DiscSent[devp2p.DiscSubprotocolError] != 0 {
		t.Error("parity sent subprotocol errors")
	}
	if geth.DiscSent[devp2p.DiscSubprotocolError] == 0 {
		t.Error("geth sent no subprotocol errors")
	}
	// Parity sends many Useless peer disconnects (9.98% in Table 1).
	if parity.DiscSent[devp2p.DiscUselessPeer] == 0 {
		t.Error("parity sent no useless peer disconnects")
	}
	// Geth broadcasts to all peers: it sends far more TRANSACTIONS
	// than Parity despite having half the peers (√n policy).
	if geth.MsgSent["TRANSACTIONS"] < 2*parity.MsgSent["TRANSACTIONS"] {
		t.Errorf("geth sent %d vs parity %d transactions",
			geth.MsgSent["TRANSACTIONS"], parity.MsgSent["TRANSACTIONS"])
	}
}

func discFrac(m map[devp2p.DisconnectReason]uint64, r devp2p.DisconnectReason) float64 {
	t := total(m)
	if t == 0 {
		return 0
	}
	return float64(m[r]) / float64(t)
}

func total(m map[devp2p.DisconnectReason]uint64) uint64 {
	var t uint64
	for _, v := range m {
		t += v
	}
	return t
}

func mustID(t *testing.T, hex string) enode.ID {
	t.Helper()
	id, err := enode.HexID(hex)
	if err != nil {
		t.Fatal(err)
	}
	return id
}
