package simnet

import (
	"errors"
	"fmt"
	"math"
	"math/big"
	"math/rand"
	"sync"
	"time"

	"repro/internal/devp2p"
	"repro/internal/enode"
	"repro/internal/eth"
	"repro/internal/faultnet"
	"repro/internal/nodefinder"
	"repro/internal/nodefinder/mlog"
	"repro/internal/rlp"
	"repro/internal/rlpx"
	"repro/internal/snappy"
)

// Timing constants mirroring the real stack's behavior.
const (
	simDialTimeout = 15 * time.Second // Geth's defaultDialTimeout
)

// Common simulated failures.
var (
	errConnRefused = errors.New("connect: connection refused")
	errTimeout     = errors.New("i/o timeout")

	// Hostile-node failures mirror the exact error shapes the real
	// transport produces against faultnet's hostile servers, wrapping
	// the same sentinel errors, so nodefinder.OutcomeClass buckets a
	// simulated attack identically to a real one.
	errSimNeverAck  = errors.New("rlpx: reading handshake size: i/o timeout")
	errSimHangHello = errors.New("rlpx: reading hello frame: i/o timeout")
	errSimReset     = errors.New("read: connection reset by peer")
	errSimGarbage   = errors.New("rlpx: reading handshake ack: invalid message")
	errSimBadMAC    = fmt.Errorf("rlpx: %w", rlpx.ErrBadHeaderMAC)
	errSimGiant     = fmt.Errorf("rlpx: %w: %d > %d", rlpx.ErrFrameTooBig, 2<<20, rlpx.DefaultMaxReadFrame)
	errSimBigHello  = fmt.Errorf("devp2p: reading hello: %w", devp2p.ErrMsgTooBig)
	errSimBadRLP    = fmt.Errorf("devp2p: decoding hello: %w", rlp.ErrValueTooLarge)
	errSimSnappy    = fmt.Errorf("rlpx: decompressing payload: %w", snappy.ErrTooLarge)
)

// SimDiscovery implements nodefinder.Discovery over the world. Each
// lookup takes virtual time and returns a sample of the discoverable
// population, approximating Kademlia convergence returns.
type SimDiscovery struct {
	W    *World
	self enode.ID

	mu  sync.Mutex
	rng *rand.Rand
}

// NewDiscovery creates a discovery handle with its own RNG stream.
func (w *World) NewDiscovery(seed int64) *SimDiscovery {
	return &SimDiscovery{
		W:    w,
		self: enode.RandomID(rand.New(rand.NewSource(seed))),
		rng:  rand.New(rand.NewSource(seed ^ 0x5eed)),
	}
}

// Self implements nodefinder.Discovery.
func (d *SimDiscovery) Self() enode.ID { return d.self }

// Lookup implements nodefinder.Discovery. The duration model makes a
// full round take ~12 virtual seconds on average, which combined with
// the 4-second lookupInterval reproduces the ≈304 lookups/hour of
// Figure 5.
func (d *SimDiscovery) Lookup(target enode.ID, done func([]*enode.Node)) {
	d.mu.Lock()
	// Lognormal-ish lookup duration: median ≈ 11 s.
	dur := time.Duration(11e9 * math.Exp(d.rng.NormFloat64()*0.3))
	// Sample up to 16 discoverable node records. Kademlia tables are
	// full of stale entries — gossip keeps returning offline and
	// dead addresses — so sampling is NOT restricted to online
	// nodes; live ones are merely more likely (they refresh their
	// table entries). This staleness is why only ≈31% of dialed
	// nodes respond (Figures 6-7).
	now := d.W.Clock.Now()
	var found []*enode.Node
	population := d.W.Nodes
	if len(population) > 0 {
		for try := 0; try < 96 && len(found) < 16; try++ {
			n := population[d.rng.Intn(len(population))]
			if now.Before(n.Born) {
				continue // identity does not exist yet
			}
			if now.After(n.Died.Add(24 * time.Hour)) {
				continue // long-dead record: evicted from tables
			}
			if !n.OnlineAt(now) && d.rng.Float64() < 0.45 {
				continue // stale record, somewhat less gossiped
			}
			found = append(found, n.Node)
		}
	}
	d.mu.Unlock()
	d.W.Clock.AfterFunc(dur, func() { done(found) })
}

// SimDialer implements nodefinder.Dialer over the world, modeling the
// outcome classes the paper's crawler observed: dead addresses, NAT
// timeouts, Too-many-peers rejections, non-eth services, light
// clients, alternative networks, and productive Mainnet handshakes
// with DAO verification.
type SimDialer struct {
	W *World

	// Metrics, when non-nil, receives per-outcome dial telemetry
	// through the same counters (and the same outcome taxonomy) as
	// nodefinder.RealDialer, so a simulated 82-day run and a real
	// crawl emit comparable telemetry.
	Metrics *nodefinder.DialerMetrics

	mu  sync.Mutex
	rng *rand.Rand
}

// NewDialer creates a dialer with its own RNG stream.
func (w *World) NewDialer(seed int64) *SimDialer {
	return &SimDialer{W: w, rng: rand.New(rand.NewSource(seed ^ 0xd1a1))}
}

// Dial implements nodefinder.Dialer.
func (d *SimDialer) Dial(target *enode.Node, kind mlog.ConnType, done func(*nodefinder.DialResult)) {
	start := d.W.Clock.Now()
	res, dur := d.outcome(target, kind, start)
	d.W.Clock.AfterFunc(dur, func() {
		res.Duration = dur
		d.Metrics.Observe(res)
		done(res)
	})
}

// outcome computes the dial result and its virtual duration.
func (d *SimDialer) outcome(target *enode.Node, kind mlog.ConnType, start time.Time) (*nodefinder.DialResult, time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	res := &nodefinder.DialResult{Node: target, Kind: kind, Start: start}

	n := d.W.NodeByID(target.ID)
	if n == nil {
		res.Err = errConnRefused
		return res, 200 * time.Millisecond
	}
	if !n.Reachable {
		// NAT'd: SYN black-holes until the dial timeout.
		res.Err = errTimeout
		return res, simDialTimeout
	}
	if !n.OnlineAt(start) {
		res.Err = errConnRefused
		return res, 300 * time.Millisecond
	}

	// Connected: sample an RTT for this connection.
	rtt := time.Duration(float64(n.RTTMedian) * math.Exp(d.rng.NormFloat64()*0.25))
	res.RTT = rtt

	// Hostile nodes attack the wire before any honest outcome class
	// can apply.
	if n.Hostile {
		return d.hostileOutcome(n, res, rtt, start)
	}

	// Peer-limit check happens before the protocol handshake, as in
	// Geth: a full node rejects with Too many peers and no HELLO.
	if d.rng.Float64() < n.Occupancy {
		reason := devp2p.DiscTooManyPeers
		res.Disconnect = &reason
		return res, 3 * rtt
	}

	// DEVp2p HELLO.
	res.Hello = d.W.helloFor(n, start)

	// Only a shared eth capability yields a STATUS; light protocols
	// (les/pip) and other services end here — §5.3's explanation for
	// the nodes Ethernodes saw but NodeFinder could not verify.
	if n.Service != SvcEth {
		return res, 4 * rtt
	}

	// eth STATUS.
	res.Status = d.W.statusFor(n, start)
	res.BestBlock = n.BestBlockAt(start)

	// DAO-fork verification for network-1 peers (Mainnet/Classic).
	if n.Network != nil && n.Network.NetworkID == 1 {
		res.DAOChecked = true
		if n.BestBlockAt(start) < 1_920_000 {
			res.DAOChecked = true
			res.DAOFork = eth.DAOForkUnknown
		} else if n.Network.DAOFork {
			res.DAOFork = eth.DAOForkSupported
		} else {
			res.DAOFork = eth.DAOForkOpposed
		}
		return res, 6 * rtt
	}
	return res, 5 * rtt
}

// hostileOutcome models a dial against one of faultnet's hostile
// peer behaviors, with the failure surfacing at the same protocol
// stage — and carrying the same sentinel error — as the real stack
// produces. Caller holds d.mu.
func (d *SimDialer) hostileOutcome(n *SimNode, res *nodefinder.DialResult, rtt time.Duration, start time.Time) (*nodefinder.DialResult, time.Duration) {
	switch n.HostileKind {
	case faultnet.HostileNeverAck:
		// Auth sent, no ack: the handshake deadline expires.
		res.Err = errSimNeverAck
		return res, rlpx.HandshakeTimeout
	case faultnet.HostileHangAfterHandshake:
		// RLPx completes, then silence where HELLO belongs.
		res.Err = errSimHangHello
		return res, rlpx.HandshakeTimeout + 2*rtt
	case faultnet.HostileWrongMAC:
		res.Err = errSimBadMAC
		return res, 3 * rtt
	case faultnet.HostileGiantFrame:
		res.Err = errSimGiant
		return res, 3 * rtt
	case faultnet.HostileOversizedHello:
		res.Err = errSimBigHello
		return res, 3 * rtt
	case faultnet.HostileBadRLPHello:
		res.Err = errSimBadRLP
		return res, 3 * rtt
	case faultnet.HostileSnappyBomb:
		// The bomb lands after a successful HELLO, exactly like the
		// real attack: census-wise the node responded, but the eth
		// handshake dies in decompression.
		res.Hello = d.W.helloFor(n, start)
		res.Err = errSimSnappy
		return res, 4 * rtt
	case faultnet.HostileStatusFlood:
		// The flood handshakes honestly; the productive part of the
		// census still records it (the crawler disconnects after
		// STATUS regardless).
		res.Hello = d.W.helloFor(n, start)
		if n.Service == SvcEth {
			res.Status = d.W.statusFor(n, start)
			res.BestBlock = n.BestBlockAt(start)
		}
		return res, 5 * rtt
	case faultnet.HostileImmediateReset:
		res.Err = errSimReset
		return res, rtt
	default: // HostileGarbage
		res.Err = errSimGarbage
		return res, 2 * rtt
	}
}

// helloFor builds a node's HELLO at virtual time t.
func (w *World) helloFor(n *SimNode, t time.Time) *devp2p.Hello {
	var caps []devp2p.Cap
	switch n.Service {
	case SvcEth:
		caps = []devp2p.Cap{{Name: "eth", Version: 62}, {Name: "eth", Version: 63}}
	case SvcLES:
		caps = []devp2p.Cap{{Name: "les", Version: 2}}
	case SvcPIP:
		caps = []devp2p.Cap{{Name: "pip", Version: 1}}
	default:
		caps = []devp2p.Cap{{Name: n.CapName(), Version: 1}}
	}
	return &devp2p.Hello{
		Version:    devp2p.Version,
		Name:       w.ClientNameAt(n, t),
		Caps:       caps,
		ListenPort: 30303,
		ID:         n.Node.ID,
	}
}

// statusFor builds a node's eth STATUS at virtual time t.
func (w *World) statusFor(n *SimNode, t time.Time) *eth.Status {
	best := n.BestBlockAt(t)
	return &eth.Status{
		ProtocolVersion: uint32(eth.Version63),
		NetworkID:       n.Network.NetworkID,
		TD:              new(big.Int).Mul(big.NewInt(int64(best)), big.NewInt(131072)),
		BestHash:        n.Network.BestHashAt(best),
		GenesisHash:     n.Network.GenesisHash,
	}
}

// IncomingGenerator schedules inbound connections to a Finder:
// online nodes (reachable or not) periodically dial the crawler, the
// only way NAT'd nodes become visible (§5.5, Table 2's NFU column).
type IncomingGenerator struct {
	W      *World
	Finder *nodefinder.Finder
	// MeanInterval is the average gap between inbound connections
	// across the whole population.
	MeanInterval time.Duration

	rng     *rand.Rand
	stopped bool
	mu      sync.Mutex
}

// StartIncoming begins generating inbound connections.
func (w *World) StartIncoming(f *nodefinder.Finder, mean time.Duration, seed int64) *IncomingGenerator {
	g := &IncomingGenerator{W: w, Finder: f, MeanInterval: mean, rng: rand.New(rand.NewSource(seed ^ 0x1c0))}
	g.schedule()
	return g
}

// Stop halts generation.
func (g *IncomingGenerator) Stop() {
	g.mu.Lock()
	g.stopped = true
	g.mu.Unlock()
}

func (g *IncomingGenerator) schedule() {
	g.mu.Lock()
	if g.stopped {
		g.mu.Unlock()
		return
	}
	gap := time.Duration(float64(g.MeanInterval) * (0.1 + g.rng.ExpFloat64()))
	g.mu.Unlock()
	g.W.Clock.AfterFunc(gap, func() {
		g.fire()
		g.schedule()
	})
}

func (g *IncomingGenerator) fire() {
	g.mu.Lock()
	if g.stopped || len(g.W.Nodes) == 0 {
		g.mu.Unlock()
		return
	}
	now := g.W.Clock.Now()
	var n *SimNode
	for try := 0; try < 32; try++ {
		cand := g.W.Nodes[g.rng.Intn(len(g.W.Nodes))]
		if cand.OnlineAt(now) {
			n = cand
			break
		}
	}
	if n == nil {
		g.mu.Unlock()
		return
	}
	rtt := time.Duration(float64(n.RTTMedian) * math.Exp(g.rng.NormFloat64()*0.25))
	res := &nodefinder.DialResult{
		Node:  n.Node,
		Kind:  mlog.ConnIncoming,
		Start: now,
		RTT:   rtt,
		Hello: g.W.helloFor(n, now),
	}
	if n.Service == SvcEth {
		res.Status = g.W.statusFor(n, now)
		res.BestBlock = n.BestBlockAt(now)
		if n.Network.NetworkID == 1 {
			res.DAOChecked = true
			switch {
			case n.BestBlockAt(now) < 1_920_000:
				res.DAOFork = eth.DAOForkUnknown
			case n.Network.DAOFork:
				res.DAOFork = eth.DAOForkSupported
			default:
				res.DAOFork = eth.DAOForkOpposed
			}
		}
	}
	res.Duration = 5 * rtt
	g.mu.Unlock()
	g.Finder.HandleIncoming(res)
}
