package simnet

import (
	"math/big"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/chain"
	"repro/internal/devp2p"
	"repro/internal/enode"
	"repro/internal/eth"
	"repro/internal/faultnet"
	"repro/internal/metrics"
	"repro/internal/netpipe"
	"repro/internal/rlp"
	"repro/internal/rlpx"
)

// This file implements wire promotion: the bridge between the
// event-driven analytic population and real net.Conn machinery.
//
// An idle SimNode is nothing but fields and an O(1) lifecycle state
// machine — no goroutine, no listener, no buffers. When a crawler
// dials its address through DialWire, the node is PROMOTED for
// exactly that connection: an in-memory duplex pipe is created and a
// serving goroutine runs the node's genuine protocol behavior over
// it — the full RLPx/DEVp2p/eth handshake chain for honest nodes
// (with the node's real secp256k1 identity), or one of faultnet's
// hostile attacks for wire-hostile nodes. When the connection ends,
// the goroutine exits and the node is DEMOTED back to its analytic
// state. A 100k-node world therefore costs 100k structs while idle,
// and only the handful of in-flight dials ever own sockets or stacks.
//
// Offline, NAT'd, and unknown addresses never promote at all: the
// dial fails analytically with the same error shapes a real TCP
// connect would produce, so nodefinder.OutcomeClass buckets them
// identically to a live crawl.

// wireHandshakeTimeout bounds a promoted server's RLPx accept, a
// backstop against a client that connects and never speaks.
const wireHandshakeTimeout = 10 * time.Second

// Analytic connect failures, shaped like the net package's errors so
// the taxonomy matches a real crawl.
var (
	errWireRefused = errConnRefused
	errWireTimeout = errTimeout
)

// wireState tracks promoted connections so CloseWire can sever them
// and tests can assert the population fully demotes.
type wireState struct {
	mu     sync.Mutex
	wg     sync.WaitGroup
	conns  map[net.Conn]struct{}
	closed bool
	rng    *rand.Rand // occupancy draws and hostile attack seeds

	promotions *metrics.Counter
	demotions  *metrics.Counter
	active     *metrics.Gauge
}

func newWireState(seed int64, r *metrics.Registry) *wireState {
	return &wireState{
		conns:      make(map[net.Conn]struct{}),
		rng:        rand.New(rand.NewSource(seed ^ 0x3197e)),
		promotions: r.Counter("simnet.promotions"),
		demotions:  r.Counter("simnet.demotions"),
		active:     r.Gauge("simnet.promoted_active"),
	}
}

// PromotedActive returns the number of currently promoted
// connections (servers still holding a live conn).
func (w *World) PromotedActive() int {
	w.wire.mu.Lock()
	defer w.wire.mu.Unlock()
	return len(w.wire.conns)
}

// DialWire is a nodefinder.RealDialer-compatible DialFunc that dials
// into the simulated world. Reachable online nodes are promoted to a
// live in-memory connection; everything else fails analytically.
// Requires a WireFidelity world (promoted honest nodes must own real
// keys to complete the RLPx handshake).
func (w *World) DialWire(network, address string, timeout time.Duration) (net.Conn, error) {
	n := w.byAddr[address]
	if n == nil {
		return nil, errWireRefused
	}
	now := w.Clock.Now()
	if !n.Reachable {
		// NAT'd: the SYN black-holes. The timeout error is immediate —
		// wall-clock waiting would add nothing to the outcome.
		return nil, errWireTimeout
	}
	if !n.OnlineAt(now) {
		return nil, errWireRefused
	}

	ws := w.wire
	ws.mu.Lock()
	if ws.closed {
		ws.mu.Unlock()
		return nil, errWireRefused
	}
	client, server := netpipe.Pair()
	ws.conns[server] = struct{}{}
	seed := ws.rng.Int63()
	occupied := !n.Hostile && ws.rng.Float64() < n.Occupancy
	ws.promotions.Inc()
	ws.active.Set(int64(len(ws.conns)))
	ws.wg.Add(1)
	ws.mu.Unlock()

	go func() {
		defer ws.wg.Done()
		defer func() {
			server.Close()
			ws.mu.Lock()
			delete(ws.conns, server)
			ws.demotions.Inc()
			ws.active.Set(int64(len(ws.conns)))
			ws.mu.Unlock()
		}()
		w.serveWire(n, server, seed, occupied)
	}()
	return client, nil
}

// CloseWire severs every promoted connection and waits for all
// serving goroutines to demote. Call when done with a WireFidelity
// world; analytic worlds have nothing to close.
func (w *World) CloseWire() {
	ws := w.wire
	ws.mu.Lock()
	ws.closed = true
	conns := make([]net.Conn, 0, len(ws.conns))
	for c := range ws.conns {
		conns = append(conns, c)
	}
	ws.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	ws.wg.Wait()
}

// serveWire runs one promoted connection to completion.
func (w *World) serveWire(n *SimNode, fd net.Conn, seed int64, occupied bool) {
	if n.Hostile {
		// The hostile projection is faultnet's own attack code — the
		// same bytes a listener-backed HostileServer would emit.
		faultnet.ServeConn(n.HostileKind, n.key, seed, fd)
		return
	}
	w.serveHonest(n, fd, occupied)
}

// serveHonest speaks the node's honest protocol for one connection:
// RLPx accept with the node's real key, then HELLO, STATUS, and
// header serving per the node's simulated identity. The server reads
// before writing at each exchange; the buffered pipe makes ordering
// safe regardless.
func (w *World) serveHonest(n *SimNode, fd net.Conn, occupied bool) {
	//lint:ignore wallclock connection deadlines are wall-clock instants guarding real goroutines, not simulated events
	fd.SetDeadline(time.Now().Add(30 * time.Second)) //nolint:errcheck
	conn, err := rlpx.AcceptTimeout(fd, n.key, wireHandshakeTimeout)
	if err != nil {
		return
	}
	now := w.Clock.Now()

	// Peer-limit rejection happens before HELLO, matching the
	// analytic dialer's model: the crawler sees a DISCONNECT where
	// the HELLO belongs and no handshake is recorded.
	if occupied {
		devp2p.SendDisconnect(conn, devp2p.DiscTooManyPeers) //nolint:errcheck
		drain(conn)
		return
	}

	theirs, err := devp2p.ReadHello(conn)
	if err != nil {
		return
	}
	ours := w.helloFor(n, now)
	if err := devp2p.SendHello(conn, ours); err != nil {
		return
	}
	if ours.Version >= devp2p.Version && theirs.Version >= devp2p.Version {
		conn.SetSnappy(true)
	}

	caps := devp2p.MatchCaps(ours.Caps, theirs.Caps, map[string]uint64{eth.ProtocolName: eth.ProtocolLength})
	var ethCap *devp2p.NegotiatedCap
	for i := range caps {
		if caps[i].Name == eth.ProtocolName {
			ethCap = &caps[i]
		}
	}
	if n.Service != SvcEth || ethCap == nil {
		// Non-eth service (or no shared eth cap): the crawler learns
		// the HELLO and cuts us loose as a useless peer.
		drain(conn)
		return
	}

	if _, err := eth.ReadStatus(conn, ethCap.Offset); err != nil {
		return
	}
	status := w.statusFor(n, now)
	status.ProtocolVersion = uint32(ethCap.Version)
	if err := eth.SendStatus(conn, ethCap.Offset, status); err != nil {
		return
	}

	// Serve requests (the DAO-fork header check, pings) until the
	// crawler disconnects.
	for {
		code, payload, err := conn.ReadMsg()
		if err != nil {
			return
		}
		switch code {
		case devp2p.DiscMsg:
			return
		case devp2p.PingMsg:
			if err := devp2p.SendPong(conn); err != nil {
				return
			}
		case ethCap.Offset + eth.GetBlockHeadersMsg:
			var req eth.GetBlockHeaders
			if err := rlp.DecodeBytes(payload, &req); err != nil {
				return
			}
			resp, err := rlp.EncodeToBytes(w.headersFor(n, now, &req))
			if err != nil {
				return
			}
			if err := conn.WriteMsg(ethCap.Offset+eth.BlockHeadersMsg, resp); err != nil {
				return
			}
		default:
			// Ignore broadcast traffic.
		}
	}
}

// drain reads until the peer hangs up, so the crawler's trailing
// writes (DISCONNECT) land instead of erroring.
func drain(conn *rlpx.Conn) {
	for {
		if _, _, err := conn.ReadMsg(); err != nil {
			return
		}
	}
}

// headersFor synthesizes a header-chain response from the node's
// analytic identity — no materialized chain required. The header the
// crawler cares about is the DAO fork block: pro-fork network-1 nodes
// carry the dao-hard-fork extra-data, anti-fork nodes do not, and
// nodes that have not reached the fork respond with nothing.
func (w *World) headersFor(n *SimNode, now time.Time, req *eth.GetBlockHeaders) []*chain.Header {
	if req.Origin.IsHash || req.Amount == 0 || n.Network == nil {
		return nil
	}
	best := n.BestBlockAt(now)
	amount := req.Amount
	if amount > 16 {
		amount = 16 // the crawler never asks for more than one
	}
	var headers []*chain.Header
	step := req.Skip + 1
	num := req.Origin.Number
	for uint64(len(headers)) < amount {
		if num > best {
			break
		}
		h := &chain.Header{
			Difficulty: big.NewInt(131072),
			Number:     new(big.Int).SetUint64(num),
			GasLimit:   8_000_000,
			Time:       uint64(now.Unix()),
		}
		if n.Network.DAOFork && num >= chain.DAOForkBlock && num < chain.DAOForkBlock+10 {
			h.Extra = append([]byte(nil), chain.DAOForkBlockExtra...)
		}
		headers = append(headers, h)
		if req.Reverse {
			if num < step {
				break
			}
			num -= step
		} else {
			num += step
		}
	}
	return headers
}

// WireNode exposes a node's enode record by index — convenience for
// tests that seed discovery with the wire world's population.
func (w *World) WireNode(i int) *enode.Node { return w.Nodes[i].Node }
