package simnet

import (
	"fmt"
	"strings"
	"time"
)

// Release is one client release.
type Release struct {
	Version string
	Date    time.Time
	Stable  bool
}

func day(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

// GethReleases is the Geth release train around the measurement
// window (§6.2: the top versions are the 8 most recent stable
// releases, with v1.8.5 and v1.8.9 quickly replaced; v1.8.12 landed
// July 5, three days before collection ended).
var GethReleases = []Release{
	{"v1.7.3-stable", day(2017, time.November, 21), true},
	{"v1.8.1-stable", day(2018, time.February, 19), true},
	{"v1.8.2-stable", day(2018, time.March, 5), true},
	{"v1.8.3-stable", day(2018, time.March, 23), true},
	{"v1.8.4-stable", day(2018, time.April, 9), true},
	{"v1.8.6-stable", day(2018, time.April, 16), true},
	{"v1.8.7-stable", day(2018, time.April, 25), true},
	{"v1.8.8-stable", day(2018, time.May, 14), true},
	{"v1.8.10-stable", day(2018, time.June, 13), true},
	{"v1.8.11-stable", day(2018, time.June, 20), true},
	{"v1.8.12-stable", day(2018, time.July, 5), true},
}

// ParityReleases models Parity's faster, mixed-channel release train
// (§6.2: weekly releases in stable/beta/rc states, so the deployed
// version distribution is sparse and only 56.2% run stable builds).
var ParityReleases = []Release{
	{"v1.9.5-stable", day(2018, time.March, 15), true},
	{"v1.9.6-beta", day(2018, time.March, 22), false},
	{"v1.9.7-stable", day(2018, time.April, 2), true},
	{"v1.10.0-beta", day(2018, time.April, 10), false},
	{"v1.10.1-rc", day(2018, time.April, 17), false},
	{"v1.10.2-beta", day(2018, time.April, 24), false},
	{"v1.10.3-stable", day(2018, time.May, 8), true},
	{"v1.10.4-beta", day(2018, time.May, 15), false},
	{"v1.10.5-beta", day(2018, time.May, 29), false},
	{"v1.10.6-stable", day(2018, time.June, 12), true},
	{"v1.10.7-beta", day(2018, time.June, 19), false},
	{"v1.10.8-beta", day(2018, time.July, 2), false},
	{"v1.10.9-stable", day(2018, time.July, 7), true},
}

// versionAt returns the release a node with the given upgrade lag
// runs at time t: the newest release that is at least lagDays old
// from the node's perspective. stableOnly restricts the candidate
// set to stable-channel releases.
func versionAt(releases []Release, t time.Time, lagDays float64, stableOnly bool) Release {
	lag := time.Duration(lagDays * 24 * float64(time.Hour))
	var best *Release
	for i := range releases {
		r := &releases[i]
		if stableOnly && !r.Stable {
			continue
		}
		if t.Sub(r.Date) >= lag && (best == nil || r.Date.After(best.Date)) {
			best = r
		}
	}
	if best == nil {
		// Nothing old enough on the channel: run the earliest
		// qualifying release.
		for i := range releases {
			if !stableOnly || releases[i].Stable {
				return releases[i]
			}
		}
		return releases[0]
	}
	return *best
}

// ClientNameAt composes the node's full DEVp2p client identifier at
// virtual time t, in the formats real clients use.
func (w *World) ClientNameAt(n *SimNode, t time.Time) string {
	switch n.Client {
	case ClientGeth:
		v := n.PinnedVersion
		if v == "" {
			v = versionAt(GethReleases, t, n.UpgradeLagDays, false).Version
			if n.DevBuild {
				// Source builds track the development branch: the
				// same version number with the unstable tag.
				v = strings.Replace(v, "-stable", "-unstable", 1)
			}
		}
		return fmt.Sprintf("Geth/%s/%s", v, n.OSBuild)
	case ClientParity:
		v := n.PinnedVersion
		if v == "" {
			v = versionAt(ParityReleases, t, n.UpgradeLagDays, n.StableOnly).Version
		}
		return fmt.Sprintf("Parity/%s/%s", v, n.OSBuild)
	case ClientEthereumJS:
		if n.Abusive {
			return "ethereumjs-devp2p/v1.0.0"
		}
		return "ethereumjs-devp2p/v2.1.3"
	case ClientCpp:
		return "cpp-ethereum/v1.3.0/linux"
	case ClientHarmony:
		return "EthereumJ/v1.8.2/Harmony"
	default:
		return "unknown-client/v0.1"
	}
}

// ParseClientVersion splits a client identifier into implementation
// and version, the way the paper's census does.
func ParseClientVersion(name string) (client, version string) {
	parts := strings.Split(name, "/")
	if len(parts) == 0 {
		return "unknown", ""
	}
	client = parts[0]
	if len(parts) > 1 {
		version = parts[1]
	}
	return client, version
}

// IsStableVersion classifies a version string the way Table 5 does.
func IsStableVersion(version string) bool {
	return strings.Contains(version, "stable")
}
