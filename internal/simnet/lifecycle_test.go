package simnet

import (
	"testing"
	"time"

	"repro/internal/testutil/leakcheck"
)

func lifecycleNode(seed uint64) *SimNode {
	start := time.Date(2018, 4, 18, 0, 0, 0, 0, time.UTC)
	return &SimNode{
		Born:        start,
		Died:        start.Add(100 * 24 * time.Hour),
		SessionMean: 6 * time.Hour,
		OfflineMean: 2 * time.Hour,
		life:        lifecycle{seed: seed},
	}
}

// TestLifecycleDeterministic pins the core contract: the on/off
// history is a pure function of the seed, regardless of query order.
func TestLifecycleDeterministic(t *testing.T) {
	leakcheck.Check(t)
	a := lifecycleNode(42)
	b := lifecycleNode(42)

	// Query a forward in coarse steps, b in fine steps; every shared
	// instant must agree.
	for h := 0; h < 500; h++ {
		at := a.Born.Add(time.Duration(h) * time.Hour)
		got := a.OnlineAt(at)
		for m := 0; m < 60; m += 7 {
			b.OnlineAt(a.Born.Add(time.Duration(h)*time.Hour - time.Duration(m)*time.Minute))
		}
		if b.OnlineAt(at) != got {
			t.Fatalf("hour %d: fine-stepped query disagrees with coarse", h)
		}
	}
}

// TestLifecycleBackwardQuery exercises the replay path: a query
// before the current window must return the same answer the monotone
// walk produced.
func TestLifecycleBackwardQuery(t *testing.T) {
	leakcheck.Check(t)
	n := lifecycleNode(7)
	var forward []bool
	times := make([]time.Time, 0, 200)
	for h := 0; h < 200; h++ {
		at := n.Born.Add(time.Duration(h) * time.Hour)
		times = append(times, at)
		forward = append(forward, n.OnlineAt(at))
	}
	// Replay in reverse: every query now lands before the machine's
	// current window and forces a deterministic reset.
	for i := len(times) - 1; i >= 0; i-- {
		if n.OnlineAt(times[i]) != forward[i] {
			t.Fatalf("backward query at hour %d disagrees with forward walk", i)
		}
	}
}

// TestLifecycleBounds: dead or unborn nodes are offline, and the very
// first window starts online at Born (the invariant the incoming
// generator and dialer both rely on).
func TestLifecycleBounds(t *testing.T) {
	leakcheck.Check(t)
	n := lifecycleNode(3)
	if n.OnlineAt(n.Born.Add(-time.Minute)) {
		t.Error("online before Born")
	}
	if n.OnlineAt(n.Died.Add(time.Minute)) {
		t.Error("online after Died")
	}
	if !n.OnlineAt(n.Born) {
		t.Error("not online at Born")
	}
}

// TestLifecycleTransitions: NextTransitionAfter returns a strictly
// advancing sequence of instants at which the state actually flips.
func TestLifecycleTransitions(t *testing.T) {
	leakcheck.Check(t)
	n := lifecycleNode(11)
	cur := n.Born
	prevState := n.OnlineAt(cur)
	for i := 0; i < 64; i++ {
		next := n.NextTransitionAfter(cur)
		if !next.After(cur) {
			t.Fatalf("transition %d not after query point", i)
		}
		if next.After(n.Died) {
			break
		}
		state := n.OnlineAt(next)
		if state == prevState {
			t.Fatalf("transition %d did not flip state", i)
		}
		cur, prevState = next, state
	}
}

// TestLifecycleChurnShape: long-run online fraction should reflect
// the session/offline mix (6h on / 2h off with the 0.2 floor → ≈75%
// online), so the population-level churn statistics survive the
// schedule-replay removal.
func TestLifecycleChurnShape(t *testing.T) {
	leakcheck.Check(t)
	online, total := 0, 0
	for seed := uint64(0); seed < 64; seed++ {
		n := lifecycleNode(seed*2654435761 + 1)
		for h := 0; h < 24*30; h++ {
			total++
			if n.OnlineAt(n.Born.Add(time.Duration(h) * time.Hour)) {
				online++
			}
		}
	}
	frac := float64(online) / float64(total)
	if frac < 0.6 || frac > 0.9 {
		t.Errorf("online fraction %.3f, want ≈0.75", frac)
	}
}
