// Package simnet models the DEVp2p node population the paper
// measured, as a discrete-event simulation over a virtual clock.
//
// The live network is unavailable offline, so this package generates
// a synthetic world whose *composition* follows the paper's published
// distributions — services (Table 3), Ethereum networks and genesis
// hashes (Figure 9), clients (Table 4), versions (Table 5, Figure
// 10), geography and ASes (Figure 12), latency (Figure 13), freshness
// (Figure 14), churn, NAT'd unreachable nodes, and the abusive
// node-ID generators of §5.4. NodeFinder's scheduling logic (package
// nodefinder) runs unmodified against this world through the
// SimDiscovery and SimDialer adapters, so the crawler behavior the
// paper validates internally (Figures 5-8) emerges from the same code
// paths.
package simnet

import (
	"fmt"
	"math"
	"math/rand"
	"net"
	"time"

	"repro/internal/chain"
	"repro/internal/crypto/keccak"
	"repro/internal/crypto/secp256k1"
	"repro/internal/enode"
	"repro/internal/faultnet"
	"repro/internal/geo"
	"repro/internal/metrics"
	"repro/internal/simclock"
)

// Service identifies which DEVp2p application a node runs (Table 3).
type Service string

// Services observed by the paper, with their capability names.
const (
	SvcEth      Service = "eth"
	SvcSwarm    Service = "bzz"
	SvcLES      Service = "les"
	SvcExpanse  Service = "exp"
	SvcIstanbul Service = "istanbul"
	SvcWhisper  Service = "shh"
	SvcDubai    Service = "dbix"
	SvcPIP      Service = "pip"
	SvcMOAC     Service = "mc"
	SvcElement  Service = "ele"
	SvcOther    Service = "other"
)

// ServiceShare is one Table 3 row.
type ServiceShare struct {
	Service Service
	Share   float64
}

// PaperServiceDistribution is Table 3.
var PaperServiceDistribution = []ServiceShare{
	{SvcEth, 0.9398},
	{SvcSwarm, 0.0185},
	{SvcLES, 0.0124},
	{SvcExpanse, 0.0050},
	{SvcIstanbul, 0.0046},
	{SvcWhisper, 0.0045},
	{SvcDubai, 0.0028},
	{SvcPIP, 0.0027},
	{SvcMOAC, 0.0016},
	{SvcElement, 0.0008},
	{SvcOther, 0.0073},
}

// ClientType identifies the implementation (Table 4).
type ClientType string

// Clients of Table 4.
const (
	ClientGeth       ClientType = "Geth"
	ClientParity     ClientType = "Parity"
	ClientEthereumJS ClientType = "ethereumjs"
	ClientCpp        ClientType = "cpp-ethereum"
	ClientHarmony    ClientType = "Harmony"
	ClientOther      ClientType = "other"
)

// Network identifies one (networkID, genesisHash) blockchain.
type Network struct {
	Name        string
	NetworkID   uint64
	GenesisHash chain.Hash
	// DAOFork is the chain's fork stance (only meaningful for the
	// Mainnet-genesis chains).
	DAOFork bool
	// HeadAt returns the chain head number at a virtual time.
	base     uint64
	baseTime time.Time
}

// HeadAt extrapolates the head block at t from a 15-second block time.
func (n *Network) HeadAt(t time.Time) uint64 {
	if t.Before(n.baseTime) {
		return n.base
	}
	return n.base + uint64(t.Sub(n.baseTime)/(15*time.Second))
}

// BestHashAt synthesizes the head block hash at a height.
func (n *Network) BestHashAt(num uint64) chain.Hash {
	h := keccak.Sum256(append(n.GenesisHash[:], byte(num>>24), byte(num>>16), byte(num>>8), byte(num)))
	return chain.Hash(h)
}

// Freshness classifies a node's sync state (Figure 14).
type Freshness int

// Freshness states.
const (
	FreshSynced         Freshness = iota // tracks the head
	FreshLagging                         // fixed lag behind the head
	FreshStuckByzantium                  // stuck at block 4,370,001
	FreshStuckOld                        // stuck at an arbitrary old block
)

// SimNode is one behavioral node.
type SimNode struct {
	Node    *enode.Node
	Service Service
	Client  ClientType
	// OSBuild completes the client version string.
	OSBuild string

	// Network is nil for non-eth services.
	Network *Network
	// MaxPeers and occupancy drive the Too-many-peers rate.
	MaxPeers  int
	Occupancy float64 // probability a dial finds the node full

	// Reachable is false for NAT'd nodes: they only appear via
	// incoming connections.
	Reachable bool

	// Churn: the node alternates online/offline sessions.
	SessionMean time.Duration
	OfflineMean time.Duration
	// life is the event-driven on/off state machine; the whole
	// schedule is a pure function of its seed, materialized one
	// window at a time (see lifecycle.go).
	life lifecycle

	// Version lifecycle.
	UpgradeLagDays float64 // mean days behind a release this node upgrades
	PinnedVersion  string  // non-empty: never upgrades
	// StableOnly nodes adopt only stable-channel releases; DevBuild
	// Geth nodes run unstable development snapshots. Together these
	// produce Table 5's stable shares (Geth 81.9%, Parity 56.2%).
	StableOnly bool
	DevBuild   bool

	// Freshness.
	Fresh     Freshness
	LagBlocks uint64

	// Latency model: median RTT for dials to this node.
	RTTMedian time.Duration

	// Hostile marks nodes that are adversarial at the wire level:
	// they execute one of faultnet's hostile peer models instead of
	// honest protocol. HostileKind is meaningful only when Hostile.
	Hostile     bool
	HostileKind faultnet.HostileKind

	// key is the node's real secp256k1 identity (WireFidelity worlds
	// only; nil in analytic worlds). PubkeyID(key.Pub) == Node.ID, so
	// a promoted server passes the crawler's RLPx identity check.
	key *secp256k1.PrivateKey

	// Abusive marks §5.4 spam identities.
	Abusive bool
	// Born/Died bound the identity's lifetime (abusive IDs live
	// minutes; normal nodes span the whole measurement).
	Born, Died time.Time
}

// CapName returns the DEVp2p capability the node advertises.
func (n *SimNode) CapName() string {
	if n.Service == SvcOther {
		return "xyz"
	}
	return string(n.Service)
}

// WorldConfig scales and seeds the population.
type WorldConfig struct {
	Seed int64
	// Start is the virtual measurement start (paper: 2018-04-18).
	Start time.Time
	// BaseNodes is the steady-state DEVp2p population size
	// (scaled-down from the paper's ecosystem).
	BaseNodes int
	// AbusiveIPs is the number of spam-generator IPs (§5.4 found
	// 1,256 at full scale; the top one alone minted 42,237 IDs).
	AbusiveIPs int
	// AbusiveRate is how often each abusive IP mints a new node ID.
	AbusiveRate time.Duration
	// UnreachableFraction is the share of nodes behind NAT.
	UnreachableFraction float64
	// MainnetShare is the fraction of eth nodes on the true Mainnet
	// (network 1 + Mainnet genesis + pro-DAO). The paper's §6.1
	// implies ≈55% of eth nodes (51.8% of all DEVp2p nodes).
	MainnetShare float64
	// AltNetworks is the number of distinct alternative networks to
	// mint (Figure 9's long tail, scaled).
	AltNetworks int
	// HostileFraction is the share of the base population that is
	// wire-hostile (faultnet's hostile peer models). Zero keeps the
	// world uniformly well-behaved, the pre-faultnet default.
	HostileFraction float64
	// WireFidelity mints real cryptographic identities (secp256k1
	// keys whose public key IS the node ID), so a dial can promote
	// the target from its analytic state machine to a live server on
	// an in-memory connection and run the genuine RLPx/DEVp2p/eth
	// handshake chain (see wire.go). Off by default: analytic worlds
	// need no keys and no promotion machinery.
	WireFidelity bool
	// Metrics, when non-nil, receives promotion-lifecycle telemetry
	// (simnet.promotions, simnet.demotions, simnet.promoted_active).
	Metrics *metrics.Registry
}

// DefaultConfig is a laptop-scale world preserving the paper's
// proportions. AbusiveRate is the configured mint cadence; the
// crawler only catches roughly half of the minted identities while
// they are alive, so the *observed* generation interval is about
// twice this — it must stay comfortably under the §5.4 filter's
// 30-minute threshold.
func DefaultConfig(seed int64) WorldConfig {
	return WorldConfig{
		Seed:                seed,
		Start:               time.Date(2018, 4, 18, 0, 0, 0, 0, time.UTC),
		BaseNodes:           1500,
		AbusiveIPs:          4,
		AbusiveRate:         10 * time.Minute,
		UnreachableFraction: 0.55,
		MainnetShare:        0.551,
		AltNetworks:         60,
	}
}

// World is the simulated DEVp2p ecosystem.
type World struct {
	Cfg   WorldConfig
	Clock *simclock.Simulated
	Geo   *geo.DB
	Rng   *rand.Rand

	Mainnet *Network
	Classic *Network
	// Networks indexes every blockchain in the world.
	Networks []*Network

	// Nodes is the full identity census, including churned-out and
	// abusive identities (ground truth for validation).
	Nodes  []*SimNode
	byID   map[enode.ID]*SimNode
	byAddr map[string]*SimNode // TCP address → node, for wire dials

	// wire is the promotion machinery (WireFidelity worlds only).
	wire *wireState
	// keyRng is a dedicated stream for identity keys so WireFidelity
	// does not perturb the population draws.
	keyRng *rand.Rand

	// ipCounter allocates synthetic addresses.
	ipCounter uint32
	// abusive IP addresses.
	AbusiveAddrs []net.IP
}

// NewWorld builds the initial population.
func NewWorld(cfg WorldConfig) *World {
	w := &World{
		Cfg:    cfg,
		Clock:  simclock.NewSimulated(cfg.Start),
		Geo:    geo.NewDB(),
		Rng:    rand.New(rand.NewSource(cfg.Seed)),
		byID:   make(map[enode.ID]*SimNode),
		byAddr: make(map[string]*SimNode),
		keyRng: rand.New(rand.NewSource(cfg.Seed ^ 0x6b37)),
	}
	w.wire = newWireState(cfg.Seed, cfg.Metrics)
	w.buildNetworks()
	w.buildPopulation()
	w.startAbusiveGenerators()
	return w
}

// buildNetworks mints the blockchain universe: Mainnet, Classic,
// testnets, and the alt-coin tail.
func (w *World) buildNetworks() {
	start := w.Cfg.Start
	// Mainnet head was ≈5.44M blocks on 2018-04-18.
	w.Mainnet = &Network{
		Name: "Mainnet", NetworkID: 1,
		GenesisHash: chain.MainnetGenesisHash,
		DAOFork:     true,
		base:        5_440_000, baseTime: start,
	}
	w.Classic = &Network{
		Name: "Classic", NetworkID: 1,
		GenesisHash: chain.MainnetGenesisHash, // same genesis; differs at the DAO fork
		DAOFork:     false,
		base:        5_780_000, baseTime: start,
	}
	w.Networks = append(w.Networks, w.Mainnet, w.Classic)
	w.Networks = append(w.Networks,
		&Network{Name: "Ropsten", NetworkID: 3, GenesisHash: chain.RopstenGenesisHash, base: 3_100_000, baseTime: start},
		&Network{Name: "Musicoin", NetworkID: 7762959, GenesisHash: w.mintGenesis("musicoin"), base: 1_800_000, baseTime: start},
		&Network{Name: "Pirl", NetworkID: 3125659152, GenesisHash: w.mintGenesis("pirl"), base: 1_200_000, baseTime: start},
		&Network{Name: "Ubiq", NetworkID: 8, GenesisHash: w.mintGenesis("ubiq"), base: 600_000, baseTime: start},
	)
	// Long tail (Figure 9): many single-peer networks; some advertise
	// the Mainnet genesis on a non-1 network ID (misconfiguration).
	for i := 0; i < w.Cfg.AltNetworks; i++ {
		gh := w.mintGenesis(fmt.Sprintf("alt-%d", i))
		if i%7 == 3 {
			gh = chain.MainnetGenesisHash // misconfigured Mainnet-genesis claimant
		}
		w.Networks = append(w.Networks, &Network{
			Name:        fmt.Sprintf("alt-%d", i),
			NetworkID:   uint64(1000 + i),
			GenesisHash: gh,
			base:        uint64(w.Rng.Intn(1_000_000)),
			baseTime:    start,
		})
	}
}

// mintKey draws a real identity key from the dedicated key stream.
func (w *World) mintKey() *secp256k1.PrivateKey {
	key, err := secp256k1.GenerateKey(w.keyRng)
	if err != nil {
		// The deterministic rng never fails to yield a scalar in range
		// within the retry budget; treat exhaustion as a program bug.
		panic(fmt.Sprintf("simnet: minting identity key: %v", err))
	}
	return key
}

func (w *World) mintGenesis(seed string) chain.Hash {
	return chain.Hash(keccak.Sum256([]byte("genesis:" + seed)))
}

// nextIP allocates a unique synthetic public IP.
func (w *World) nextIP() net.IP {
	w.ipCounter++
	c := w.ipCounter
	return net.IPv4(byte(11+(c>>16)%200), byte(c>>12), byte(c>>4), byte(c&0xF)*16+1)
}

// buildPopulation mints the steady-state nodes.
func (w *World) buildPopulation() {
	for i := 0; i < w.Cfg.BaseNodes; i++ {
		w.register(w.mintNode())
	}
}

// register indexes a minted node by identity and wire address.
func (w *World) register(n *SimNode) {
	w.Nodes = append(w.Nodes, n)
	w.byID[n.Node.ID] = n
	w.byAddr[n.Node.TCPAddr().String()] = n
}

// mintNode draws one node from the population distributions.
func (w *World) mintNode() *SimNode {
	rng := w.Rng
	id := enode.RandomID(rng)
	var key *secp256k1.PrivateKey
	if w.Cfg.WireFidelity {
		key = w.mintKey()
		id = enode.PubkeyID(&key.Pub)
	}
	ip := w.nextIP()
	node := enode.New(id, ip, 30303, 30303)

	n := &SimNode{
		Node:      node,
		key:       key,
		Service:   w.drawService(),
		Reachable: rng.Float64() >= w.Cfg.UnreachableFraction,
		Born:      w.Cfg.Start,
		Died:      w.Cfg.Start.Add(100 * 24 * time.Hour),
		// Churn: heavy-tailed session lengths; median sessions of
		// hours with a long online tail.
		SessionMean: time.Duration(2+rng.ExpFloat64()*20) * time.Hour,
		OfflineMean: time.Duration(1+rng.ExpFloat64()*8) * time.Hour,
		life:        lifecycle{seed: uint64(rng.Int63())},
	}
	country := w.Geo.Country(ip)
	n.RTTMedian = rttForCountry(country, rng)

	// A HostileFraction slice of the world is adversarial on the
	// wire: its protocol identity below is what it *claims* during
	// discovery, but dials hit one of faultnet's attack behaviors.
	if rng.Float64() < w.Cfg.HostileFraction {
		n.Hostile = true
		n.HostileKind = faultnet.HostileKind(rng.Intn(int(faultnet.NumHostileKinds)))
	}

	switch n.Service {
	case SvcEth:
		w.assignEthIdentity(n, rng)
	case SvcLES, SvcPIP:
		// Light clients still belong to Mainnet logically.
		n.Network = w.Mainnet
		if n.Service == SvcPIP {
			n.Client = ClientParity
		} else {
			n.Client = ClientGeth
		}
		n.MaxPeers, n.Occupancy = 25, 0.3
	default:
		n.Client = ClientOther
		n.MaxPeers, n.Occupancy = 25, 0.2
	}
	w.assignClientName(n)
	return n
}

func (w *World) drawService() Service {
	f := w.Rng.Float64()
	acc := 0.0
	for _, s := range PaperServiceDistribution {
		acc += s.Share
		if f < acc {
			return s.Service
		}
	}
	return SvcOther
}

// assignEthIdentity picks network, client, version behavior, peers,
// and freshness for an eth-subprotocol node.
func (w *World) assignEthIdentity(n *SimNode, rng *rand.Rand) {
	// Network: MainnetShare on the true Mainnet; the rest spread
	// over Classic, testnets, and the alt tail.
	f := rng.Float64()
	switch {
	case f < w.Cfg.MainnetShare:
		n.Network = w.Mainnet
	case f < w.Cfg.MainnetShare+0.08:
		n.Network = w.Classic
	case f < w.Cfg.MainnetShare+0.13:
		n.Network = w.Networks[2] // Ropsten
	default:
		// Zipf-ish tail over the alt networks: low indexes get more.
		idx := 3 + int(math.Floor(math.Pow(rng.Float64(), 2.5)*float64(len(w.Networks)-3)))
		if idx >= len(w.Networks) {
			idx = len(w.Networks) - 1
		}
		n.Network = w.Networks[idx]
	}

	// Client mix (Table 4).
	cf := rng.Float64()
	switch {
	case cf < 0.766:
		n.Client = ClientGeth
		n.MaxPeers = 25
	case cf < 0.766+0.170:
		n.Client = ClientParity
		n.MaxPeers = 50
	case cf < 0.766+0.170+0.052:
		n.Client = ClientEthereumJS
		n.MaxPeers = 25
	case cf < 0.766+0.170+0.052+0.006:
		n.Client = ClientCpp
		n.MaxPeers = 25
	case cf < 0.766+0.170+0.052+0.006+0.004:
		n.Client = ClientHarmony
		n.MaxPeers = 25
	default:
		n.Client = ClientOther
		n.MaxPeers = 25
	}
	// Occupancy: both clients sit at max peers most of the time
	// (99.1% Geth, 91.5% Parity in §3).
	switch n.Client {
	case ClientGeth:
		n.Occupancy = 0.991
	case ClientParity:
		n.Occupancy = 0.915
	default:
		n.Occupancy = 0.85
	}

	// Version behavior: most upgrade with a lag; some pin; channel
	// preferences shape Table 5's stable shares.
	n.UpgradeLagDays = rng.ExpFloat64() * 18
	switch n.Client {
	case ClientGeth:
		switch {
		case rng.Float64() < 0.035:
			// §6.2: 3.5% run versions older than v1.7.1.
			n.PinnedVersion = pickOne(rng, []string{"v1.6.7-stable", "v1.6.5-stable", "v1.5.9-stable", "v1.7.0-unstable"})
		case rng.Float64() < 0.08:
			n.PinnedVersion = pickOne(rng, []string{"v1.7.2-stable", "v1.7.3-stable"})
		default:
			// ≈15% of Geth nodes build from source and run unstable
			// development snapshots.
			n.DevBuild = rng.Float64() < 0.16
		}
	case ClientParity:
		// Parity publishes stable/beta/rc weekly; slightly under half
		// of deployments track only the stable channel (Table 5:
		// 56.2% stable overall).
		n.StableOnly = rng.Float64() < 0.45
	}

	// Freshness (Figure 14): about a third of Mainnet nodes are
	// stale; a small cluster is stuck just past Byzantium.
	ff := rng.Float64()
	switch {
	case ff < 0.02 && n.Network == w.Mainnet:
		n.Fresh = FreshStuckByzantium
	case ff < 0.327:
		if rng.Float64() < 0.4 {
			n.Fresh = FreshStuckOld
			n.LagBlocks = uint64(50_000 + rng.Intn(2_000_000))
		} else {
			n.Fresh = FreshLagging
			// Log-uniform lag from hundreds to ~100k blocks.
			n.LagBlocks = uint64(math.Pow(10, 2.5+rng.Float64()*2.5))
		}
	default:
		n.Fresh = FreshSynced
	}
}

func pickOne(rng *rand.Rand, xs []string) string { return xs[rng.Intn(len(xs))] }

// rttForCountry samples a median RTT consistent with a crawler in
// the central US (the paper's vantage point).
func rttForCountry(c geo.Country, rng *rand.Rand) time.Duration {
	base := map[geo.Country]float64{
		"US": 40, "CA": 55, "GB": 95, "DE": 105, "FR": 100, "NL": 100,
		"RU": 150, "CN": 210, "KR": 180, "JP": 160, "SG": 220, "AU": 210,
		"OTHER": 140,
	}
	m, ok := base[c]
	if !ok {
		m = 140
	}
	// Lognormal jitter around the base.
	f := math.Exp(rng.NormFloat64() * 0.35)
	return time.Duration(m*f) * time.Millisecond
}

// NodeByID looks up a node.
func (w *World) NodeByID(id enode.ID) *SimNode {
	return w.byID[id]
}

// OnlineAt reports whether a node is online at virtual time t. The
// on/off schedule is a deterministic function of the node's lifecycle
// seed; queries at non-decreasing times are O(1) amortized.
func (n *SimNode) OnlineAt(t time.Time) bool {
	return n.life.onlineAt(n, t)
}

// NextTransitionAfter returns the node's first online/offline state
// change at or after t — the instant an event-driven scheduler should
// revisit the node instead of polling it.
func (n *SimNode) NextTransitionAfter(t time.Time) time.Time {
	return n.life.nextTransition(n, t)
}

// BestBlockAt returns the node's advertised head number at t.
func (n *SimNode) BestBlockAt(t time.Time) uint64 {
	if n.Network == nil {
		return 0
	}
	head := n.Network.HeadAt(t)
	switch n.Fresh {
	case FreshStuckByzantium:
		return chain.ByzantiumForkBlock + 1
	case FreshStuckOld:
		if n.LagBlocks >= head {
			return 1
		}
		return head - n.LagBlocks
	case FreshLagging:
		if n.LagBlocks >= head {
			return 1
		}
		return head - n.LagBlocks
	default:
		return head
	}
}

// startAbusiveGenerators schedules the §5.4 spam-identity mints.
func (w *World) startAbusiveGenerators() {
	for i := 0; i < w.Cfg.AbusiveIPs; i++ {
		ip := w.nextIP()
		w.AbusiveAddrs = append(w.AbusiveAddrs, ip)
		w.scheduleAbusiveMint(ip)
	}
}

func (w *World) scheduleAbusiveMint(ip net.IP) {
	jitter := time.Duration(w.Rng.Int63n(int64(w.Cfg.AbusiveRate)/2 + 1))
	w.Clock.AfterFunc(w.Cfg.AbusiveRate/2+jitter, func() {
		now := w.Clock.Now()
		id := enode.RandomID(w.Rng)
		var key *secp256k1.PrivateKey
		if w.Cfg.WireFidelity {
			key = w.mintKey()
			id = enode.PubkeyID(&key.Pub)
		}
		n := &SimNode{
			Node:        enode.New(id, ip, 30303, 30303),
			key:         key,
			Service:     SvcEth,
			Client:      ClientEthereumJS,
			OSBuild:     "",
			Network:     w.Mainnet,
			MaxPeers:    25,
			Occupancy:   0,
			Reachable:   true,
			Born:        now,
			Died:        now.Add(time.Duration(5+w.Rng.Intn(25)) * time.Minute),
			SessionMean: time.Hour,
			OfflineMean: time.Hour,
			life:        lifecycle{seed: uint64(w.Rng.Int63())},
			Fresh:       FreshStuckOld,
			LagBlocks:   math.MaxUint64 >> 1, // best hash pinned at genesis
			RTTMedian:   120 * time.Millisecond,
			Abusive:     true,
		}
		w.register(n)
		w.scheduleAbusiveMint(ip)
	})
}

// assignClientName fills OSBuild used when composing version strings.
func (w *World) assignClientName(n *SimNode) {
	switch n.Client {
	case ClientGeth:
		n.OSBuild = pickOne(w.Rng, []string{"linux-amd64/go1.10", "linux-amd64/go1.9", "darwin-amd64/go1.10", "windows-amd64/go1.10"})
	case ClientParity:
		n.OSBuild = pickOne(w.Rng, []string{"x86_64-linux-gnu/rustc1.26.0", "x86_64-linux-gnu/rustc1.25.0", "x86_64-macos/rustc1.26.0"})
	default:
		n.OSBuild = "linux"
	}
}
