package simnet

import (
	"math/rand"
	"time"

	"repro/internal/enode"
)

// EthernodesSnapshot models the comparison crawler of §5.3 (Table 2).
//
// Ethernodes.org runs one or a few crawling nodes and lists every
// node seen with network ID 1 within 24 hours. It has two systematic
// differences from NodeFinder: lower coverage (fewer vantage points,
// normal client behavior), and network attribution by the *claimed*
// network ID rather than verified genesis + DAO stance, so its
// "Mainnet" page mixes in alt-chain and spam identities.
type EthernodesSnapshot struct {
	// Listed is every node on the "Mainnet nodes" page (network ID 1
	// claimants seen in the window).
	Listed []enode.ID
	// GenesisFiltered is the subset whose reported genesis hash is
	// the Mainnet genesis — the paper's 4,717 of 20,437.
	GenesisFiltered []enode.ID
}

// EthernodesConfig tunes the model.
type EthernodesConfig struct {
	// ReachableCoverage is the probability a reachable network-1
	// node is seen in the window.
	ReachableCoverage float64
	// UnreachableCoverage is the same for NAT'd nodes (they must
	// happen to dial the Ethernodes crawler).
	UnreachableCoverage float64
	Seed                int64
}

// DefaultEthernodesConfig reflects a single-crawler deployment.
func DefaultEthernodesConfig(seed int64) EthernodesConfig {
	return EthernodesConfig{ReachableCoverage: 0.80, UnreachableCoverage: 0.42, Seed: seed}
}

// Ethernodes computes the snapshot for a 24-hour window starting at
// from. Listing is a deterministic per-node coin so repeated calls
// agree.
//
// Light-protocol nodes (les/pip) appear on the page too: Ethernodes'
// crawler obtains their network information, but NodeFinder cannot
// complete an eth STATUS exchange with them — §5.3's explanation for
// 61 of the nodes Ethernodes had that NodeFinder could not verify.
func (w *World) Ethernodes(cfg EthernodesConfig, from time.Time) *EthernodesSnapshot {
	to := from.Add(24 * time.Hour)
	snap := &EthernodesSnapshot{}
	for _, n := range w.Nodes {
		light := n.Service == SvcLES || n.Service == SvcPIP
		if !light && (n.Service != SvcEth || n.Network == nil || n.Network.NetworkID != 1) {
			continue
		}
		if light && (n.Network == nil || n.Network.NetworkID != 1) {
			continue
		}
		if !n.onlineSomeTimeIn(from, to) {
			continue
		}
		cov := cfg.ReachableCoverage
		if !n.Reachable {
			cov = cfg.UnreachableCoverage
		}
		// Per-node deterministic coin.
		coin := rand.New(rand.NewSource(cfg.Seed ^ int64(n.life.seed))).Float64()
		if coin >= cov {
			continue
		}
		snap.Listed = append(snap.Listed, n.Node.ID)
		// Genesis filter: the claimed genesis. Our network-1 nodes
		// all carry the Mainnet genesis (Mainnet and Classic share
		// it), so the filter passes them; abusive identities report
		// the genesis as their best hash and pass too.
		snap.GenesisFiltered = append(snap.GenesisFiltered, n.Node.ID)
	}
	return snap
}

// onlineSomeTimeIn reports whether the node had any online overlap
// with [from, to], sampled at 30-minute resolution.
func (n *SimNode) onlineSomeTimeIn(from, to time.Time) bool {
	for t := from; t.Before(to); t = t.Add(30 * time.Minute) {
		if n.OnlineAt(t) {
			return true
		}
	}
	return false
}

// MainnetGroundTruth returns the IDs of genuine Mainnet (pro-DAO,
// non-abusive) nodes online at some point in [from, to] — the
// denominator NodeFinder is validated against.
func (w *World) MainnetGroundTruth(from, to time.Time) []enode.ID {
	var out []enode.ID
	for _, n := range w.Nodes {
		if n.Abusive || n.Service != SvcEth || n.Network != w.Mainnet {
			continue
		}
		if n.onlineSomeTimeIn(from, to) {
			out = append(out, n.Node.ID)
		}
	}
	return out
}

// ReachabilityOf classifies a set of node IDs into reachable and
// unreachable counts (Table 2's NFR/NFU split).
func (w *World) ReachabilityOf(ids []enode.ID) (reachable, unreachable int) {
	for _, id := range ids {
		if n := w.NodeByID(id); n != nil {
			if n.Reachable {
				reachable++
			} else {
				unreachable++
			}
		}
	}
	return reachable, unreachable
}
