package simnet

import (
	"math"
	"sync"
	"time"
)

// lifecycle is a node's online/offline churn as an event-driven state
// machine: the complete on/off history is a pure function of an
// 8-byte PRNG seed, materialized one session window at a time. An
// idle node therefore costs three timestamps and two words of PRNG
// state — no goroutine, no timer, no cached transition slice — which
// is what lets a World hold 10^5–10^6 nodes. Queries at
// non-decreasing times (the common case: every caller asks about
// "now") advance the window in O(1) amortized; a query before the
// current window replays deterministically from the seed.
type lifecycle struct {
	mu sync.Mutex
	// seed is the immutable stream identity; rng is the current
	// splitmix64 state, always reproducible by replaying from seed.
	seed uint64
	rng  uint64
	// The current window [winStart, winEnd) and its state. winEnd is
	// the next transition instant.
	winStart time.Time
	winEnd   time.Time
	online   bool
	started  bool
}

// splitmix64 is the SplitMix64 step function: tiny, fast, and
// statistically solid for schedule jitter.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d4a9c4b16e5f3d
	return z ^ (z >> 31)
}

// nextFloat draws a uniform in [0,1) and advances the stream.
func (l *lifecycle) nextFloat() float64 {
	l.rng = splitmix64(l.rng)
	return float64(l.rng>>11) / (1 << 53)
}

// nextExp draws a unit-mean exponential and advances the stream.
func (l *lifecycle) nextExp() float64 {
	u := l.nextFloat()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -math.Log(1 - u)
}

// reset rewinds the stream to the first window starting at born.
func (l *lifecycle) reset(n *SimNode) {
	l.rng = l.seed
	l.winStart = n.Born
	l.online = true
	l.started = true
	l.winEnd = l.winStart.Add(l.span(n))
}

// span draws the current window's duration from the node's churn
// parameters: exponential-ish sessions with a floor, exactly the
// shape the schedule-replay implementation produced.
func (l *lifecycle) span(n *SimNode) time.Duration {
	mean := n.SessionMean
	if !l.online {
		mean = n.OfflineMean
	}
	d := time.Duration(float64(mean) * (0.2 + l.nextExp()))
	if d <= 0 {
		d = time.Second
	}
	return d
}

// onlineAt reports the node's state at t, stepping the window machine
// forward (or replaying from the seed for a historical query).
func (l *lifecycle) onlineAt(n *SimNode, t time.Time) bool {
	if t.Before(n.Born) || t.After(n.Died) {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.started || t.Before(l.winStart) {
		l.reset(n)
	}
	for !t.Before(l.winEnd) {
		l.winStart = l.winEnd
		l.online = !l.online
		l.winEnd = l.winStart.Add(l.span(n))
	}
	return l.online
}

// nextTransition returns the first state-change instant at or after
// t: the moment an offline node comes back (or an online one leaves).
// The event-driven population uses it to schedule wake-ups instead of
// polling.
func (l *lifecycle) nextTransition(n *SimNode, t time.Time) time.Time {
	if t.Before(n.Born) {
		return n.Born
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.started || t.Before(l.winStart) {
		l.reset(n)
	}
	for !t.Before(l.winEnd) {
		l.winStart = l.winEnd
		l.online = !l.online
		l.winEnd = l.winStart.Add(l.span(n))
	}
	return l.winEnd
}
