// Package simclock provides an injectable clock abstraction with a
// deterministic simulated implementation.
//
// The paper's measurements span 82 days of wall time. To reproduce
// their shape without waiting 82 days, every time-dependent component
// in this repository (dial schedulers, peer churn, version lifecycle)
// takes a Clock. Production code passes System; experiments pass a
// Simulated clock and advance it explicitly, processing timer
// callbacks in strict timestamp order, which also makes every
// experiment deterministic.
package simclock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock abstracts time for simulation.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// AfterFunc schedules fn to run after d and returns a Timer that
	// can cancel it.
	AfterFunc(d time.Duration, fn func()) Timer
	// Since returns the elapsed time since t.
	Since(t time.Time) time.Duration
}

// Timer is a cancellable scheduled callback.
type Timer interface {
	// Stop cancels the timer; it reports whether the call prevented
	// the callback from firing.
	Stop() bool
}

// System is the real-time clock backed by the time package.
type System struct{}

// Now implements Clock.
func (System) Now() time.Time { return time.Now() }

// Since implements Clock.
func (System) Since(t time.Time) time.Duration { return time.Since(t) }

// AfterFunc implements Clock.
func (System) AfterFunc(d time.Duration, fn func()) Timer {
	return systemTimer{time.AfterFunc(d, fn)}
}

type systemTimer struct{ t *time.Timer }

func (t systemTimer) Stop() bool { return t.t.Stop() }

// Simulated is a virtual clock. Time only moves when Advance or Run
// is called; due callbacks execute on the advancing goroutine in
// timestamp order (ties broken by scheduling order), giving fully
// deterministic executions.
type Simulated struct {
	mu     sync.Mutex
	now    time.Time
	seq    uint64
	queue  eventQueue
	active map[*simTimer]struct{}
}

// NewSimulated creates a simulated clock starting at the given time.
func NewSimulated(start time.Time) *Simulated {
	return &Simulated{now: start, active: make(map[*simTimer]struct{})}
}

// Now implements Clock.
func (c *Simulated) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Since implements Clock.
func (c *Simulated) Since(t time.Time) time.Duration {
	return c.Now().Sub(t)
}

// AfterFunc implements Clock. The callback runs synchronously inside
// a future Advance/Run call.
func (c *Simulated) AfterFunc(d time.Duration, fn func()) Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d < 0 {
		d = 0
	}
	t := &simTimer{clock: c, when: c.now.Add(d), fn: fn, seq: c.seq}
	c.seq++
	heap.Push(&c.queue, t)
	c.active[t] = struct{}{}
	return t
}

// Advance moves the clock forward by d, firing all callbacks due in
// the interval in order. It returns the number of callbacks fired.
func (c *Simulated) Advance(d time.Duration) int {
	c.mu.Lock()
	target := c.now.Add(d)
	c.mu.Unlock()
	return c.RunUntil(target)
}

// RunUntil fires callbacks in order until the queue holds nothing due
// at or before target, then sets the clock to target.
func (c *Simulated) RunUntil(target time.Time) int {
	fired := 0
	for {
		c.mu.Lock()
		if len(c.queue) == 0 || c.queue[0].when.After(target) {
			if target.After(c.now) {
				c.now = target
			}
			c.mu.Unlock()
			return fired
		}
		t := heap.Pop(&c.queue).(*simTimer)
		if _, ok := c.active[t]; !ok {
			c.mu.Unlock()
			continue // cancelled
		}
		delete(c.active, t)
		if t.when.After(c.now) {
			c.now = t.when
		}
		fn := t.fn
		c.mu.Unlock()
		fn()
		fired++
	}
}

// RunAll fires every pending callback (including ones scheduled by
// earlier callbacks) up to the limit, returning the count fired. It
// guards against runaway self-rescheduling loops.
func (c *Simulated) RunAll(limit int) int {
	fired := 0
	for fired < limit {
		c.mu.Lock()
		if len(c.queue) == 0 {
			c.mu.Unlock()
			return fired
		}
		t := heap.Pop(&c.queue).(*simTimer)
		if _, ok := c.active[t]; !ok {
			c.mu.Unlock()
			continue
		}
		delete(c.active, t)
		if t.when.After(c.now) {
			c.now = t.when
		}
		fn := t.fn
		c.mu.Unlock()
		fn()
		fired++
	}
	return fired
}

// PendingCount returns the number of live timers.
func (c *Simulated) PendingCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.active)
}

// NextDeadline returns the time of the earliest live timer, and false
// if none are scheduled.
func (c *Simulated) NextDeadline() (time.Time, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.queue) > 0 {
		if _, ok := c.active[c.queue[0]]; ok {
			return c.queue[0].when, true
		}
		heap.Pop(&c.queue)
	}
	return time.Time{}, false
}

type simTimer struct {
	clock *Simulated
	when  time.Time
	fn    func()
	seq   uint64
	index int
}

// Stop implements Timer.
func (t *simTimer) Stop() bool {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	if _, ok := t.clock.active[t]; ok {
		delete(t.clock.active, t)
		return true
	}
	return false
}

// eventQueue is a min-heap of timers by (when, seq).
type eventQueue []*simTimer

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].when.Equal(q[j].when) {
		return q[i].seq < q[j].seq
	}
	return q[i].when.Before(q[j].when)
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	t := x.(*simTimer)
	t.index = len(*q)
	*q = append(*q, t)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return t
}
