package simclock

import (
	"sync/atomic"
	"testing"
	"time"
)

var epoch = time.Date(2018, 4, 18, 0, 0, 0, 0, time.UTC)

func TestSimulatedNow(t *testing.T) {
	c := NewSimulated(epoch)
	if !c.Now().Equal(epoch) {
		t.Fatal("start time wrong")
	}
	c.Advance(3 * time.Hour)
	if got := c.Now(); !got.Equal(epoch.Add(3 * time.Hour)) {
		t.Fatalf("now = %v", got)
	}
	if c.Since(epoch) != 3*time.Hour {
		t.Fatal("Since wrong")
	}
}

func TestAfterFuncFiresInOrder(t *testing.T) {
	c := NewSimulated(epoch)
	var order []int
	c.AfterFunc(2*time.Second, func() { order = append(order, 2) })
	c.AfterFunc(1*time.Second, func() { order = append(order, 1) })
	c.AfterFunc(3*time.Second, func() { order = append(order, 3) })
	n := c.Advance(10 * time.Second)
	if n != 3 {
		t.Fatalf("fired %d", n)
	}
	if order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order %v", order)
	}
}

func TestAfterFuncTieBreak(t *testing.T) {
	c := NewSimulated(epoch)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.AfterFunc(time.Second, func() { order = append(order, i) })
	}
	c.Advance(time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("ties not FIFO: %v", order)
		}
	}
}

func TestTimerStop(t *testing.T) {
	c := NewSimulated(epoch)
	fired := false
	timer := c.AfterFunc(time.Second, func() { fired = true })
	if !timer.Stop() {
		t.Fatal("Stop reported already fired")
	}
	if timer.Stop() {
		t.Fatal("second Stop reported success")
	}
	c.Advance(2 * time.Second)
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestCallbackTimeIsDeadline(t *testing.T) {
	c := NewSimulated(epoch)
	var at time.Time
	c.AfterFunc(90*time.Second, func() { at = c.Now() })
	c.Advance(time.Hour)
	if !at.Equal(epoch.Add(90 * time.Second)) {
		t.Fatalf("callback saw %v", at)
	}
	// After the advance, time is at the full hour.
	if !c.Now().Equal(epoch.Add(time.Hour)) {
		t.Fatal("clock not at target after advance")
	}
}

func TestReschedulingCallback(t *testing.T) {
	c := NewSimulated(epoch)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			c.AfterFunc(time.Minute, tick)
		}
	}
	c.AfterFunc(time.Minute, tick)
	c.Advance(time.Hour)
	if count != 5 {
		t.Fatalf("count = %d", count)
	}
}

func TestRunAllLimit(t *testing.T) {
	c := NewSimulated(epoch)
	count := 0
	var loop func()
	loop = func() {
		count++
		c.AfterFunc(time.Second, loop)
	}
	c.AfterFunc(time.Second, loop)
	fired := c.RunAll(100)
	if fired != 100 || count != 100 {
		t.Fatalf("fired %d count %d", fired, count)
	}
}

func TestNextDeadline(t *testing.T) {
	c := NewSimulated(epoch)
	if _, ok := c.NextDeadline(); ok {
		t.Fatal("deadline on empty clock")
	}
	tm := c.AfterFunc(5*time.Second, func() {})
	c.AfterFunc(9*time.Second, func() {})
	if d, ok := c.NextDeadline(); !ok || !d.Equal(epoch.Add(5*time.Second)) {
		t.Fatalf("deadline %v %v", d, ok)
	}
	tm.Stop()
	if d, ok := c.NextDeadline(); !ok || !d.Equal(epoch.Add(9*time.Second)) {
		t.Fatalf("after cancel: %v %v", d, ok)
	}
}

func TestPendingCount(t *testing.T) {
	c := NewSimulated(epoch)
	t1 := c.AfterFunc(time.Second, func() {})
	c.AfterFunc(2*time.Second, func() {})
	if c.PendingCount() != 2 {
		t.Fatal("want 2 pending")
	}
	t1.Stop()
	if c.PendingCount() != 1 {
		t.Fatal("want 1 pending after stop")
	}
	c.Advance(time.Minute)
	if c.PendingCount() != 0 {
		t.Fatal("want 0 pending after advance")
	}
}

func TestSystemClock(t *testing.T) {
	var c Clock = System{}
	start := c.Now()
	var fired atomic.Bool
	timer := c.AfterFunc(time.Millisecond, func() { fired.Store(true) })
	deadline := time.Now().Add(2 * time.Second)
	for !fired.Load() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !fired.Load() {
		t.Fatal("system AfterFunc never fired")
	}
	timer.Stop()
	if c.Since(start) <= 0 {
		t.Fatal("Since not positive")
	}
}

func TestAdvanceWithNoTimers(t *testing.T) {
	c := NewSimulated(epoch)
	if n := c.Advance(time.Hour); n != 0 {
		t.Fatalf("fired %d", n)
	}
	if !c.Now().Equal(epoch.Add(time.Hour)) {
		t.Fatal("time did not advance")
	}
}

func TestNegativeDelay(t *testing.T) {
	c := NewSimulated(epoch)
	fired := false
	c.AfterFunc(-time.Second, func() { fired = true })
	c.Advance(0)
	if !fired {
		t.Fatal("negative-delay timer should fire immediately on advance")
	}
}
