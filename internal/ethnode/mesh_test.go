package ethnode

import (
	"net"
	"testing"
	"time"

	"repro/internal/devp2p"
	"repro/internal/discv4"
	"repro/internal/enode"
	"repro/internal/nodefinder"
	"repro/internal/nodefinder/mlog"
	"repro/internal/testutil/leakcheck"
)

// TestMeshFormsAndBroadcastsTransactions exercises the full client
// behavior over real sockets: nodes discover each other, dial out to
// fill peer slots, and broadcast transactions — the traffic the §3
// case study instruments.
func TestMeshFormsAndBroadcastsTransactions(t *testing.T) {
	leakcheck.Check(t)
	if testing.Short() {
		t.Skip("integration test")
	}
	boot := startNode(t, 200, Config{Discovery: true})
	var nodes []*Node
	for i := int64(0); i < 3; i++ {
		n := startNode(t, 201+i, Config{
			Discovery:  true,
			Bootnodes:  []*enode.Node{boot.Self()},
			DialPeers:  true,
			TxInterval: 100 * time.Millisecond,
			TxRelay:    RelayAll,
		})
		if err := n.Bond(boot.Self()); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}

	// Wait for a mesh: every dialing node should find at least one
	// peer.
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		connected := 0
		for _, n := range nodes {
			if n.PeerCount() >= 1 {
				connected++
			}
		}
		if connected == len(nodes) {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	for i, n := range nodes {
		if n.PeerCount() < 1 {
			t.Fatalf("node %d never connected (peers=%d)", i, n.PeerCount())
		}
	}

	// Transactions must flow in both directions somewhere.
	deadline = time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		var sent, recv uint64
		for _, n := range append(nodes, boot) {
			s, r := n.Counters.Snapshot()
			sent += s["TRANSACTIONS"]
			recv += r["TRANSACTIONS"]
		}
		if sent > 0 && recv > 0 {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatal("no transaction traffic observed")
}

// TestIncomingListenerCapturesDialingNodes verifies the paper's
// incoming-connection channel over real sockets: a NodeFinder
// listener accepts a connection initiated by an ethnode's dial loop
// and records the peer's HELLO and STATUS.
func TestIncomingListenerCapturesDialingNodes(t *testing.T) {
	leakcheck.Check(t)
	if testing.Short() {
		t.Skip("integration test")
	}
	// The crawler's discovery endpoint + incoming listener share a
	// port number so the ethnode can find and dial it.
	key := testKey(t, 210)
	col := mlog.NewCollector()
	finder, err := nodefinder.New(nodefinder.Config{
		Discovery: nullDiscovery{self: enode.PubkeyID(&key.Pub)},
		Dialer:    nullDialer{},
		Log:       col,
	})
	if err != nil {
		t.Fatal(err)
	}
	listener, err := nodefinder.ListenIncoming("", key, devp2p.Hello{
		Version: devp2p.Version,
		Name:    "NodeFinder/v1.0",
		Caps:    []devp2p.Cap{{Name: "eth", Version: 62}, {Name: "eth", Version: 63}},
	}, MainnetStatusFor(mainnetSim), finder)
	if err != nil {
		t.Fatal(err)
	}
	defer listener.Close()

	udp, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: listener.Addr().Port})
	if err != nil {
		t.Fatal(err)
	}
	disc, err := discv4.Listen(discv4.UDPConn{UDPConn: udp}, discv4.Config{
		Key:         key,
		AnnounceTCP: uint16(listener.Addr().Port),
		Seed:        210,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer disc.Close()
	crawlerNode := enode.New(enode.PubkeyID(&key.Pub), net.IPv4(127, 0, 0, 1),
		uint16(listener.Addr().Port), uint16(listener.Addr().Port))

	// An ethnode that bootstraps off the crawler and dials out.
	n := startNode(t, 211, Config{
		Discovery:  true,
		Bootnodes:  []*enode.Node{crawlerNode},
		DialPeers:  true,
		ClientName: "Geth/v1.8.11-stable/linux-amd64/go1.10",
	})
	if err := n.Bond(crawlerNode); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if finder.Stats().IncomingConns > 0 {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if finder.Stats().IncomingConns == 0 {
		t.Fatal("listener never saw an incoming connection")
	}
	// The census must hold the dialing node's identity.
	found := false
	for _, e := range col.Entries() {
		if e.ConnType == mlog.ConnIncoming && e.Hello != nil &&
			e.Hello.ClientName == "Geth/v1.8.11-stable/linux-amd64/go1.10" {
			found = true
			if e.Status == nil {
				t.Error("incoming session captured no STATUS")
			}
		}
	}
	if !found {
		t.Fatalf("census missing the inbound peer (entries=%d)", col.Len())
	}
}

// TestParityRelayPolicySqrt verifies the √n broadcast policy by
// comparing two identical centers that differ only in relay policy:
// with 9 attached peers, the √n center must send roughly a third of
// what the broadcast-to-all center sends.
func TestParityRelayPolicySqrt(t *testing.T) {
	leakcheck.Check(t)
	runCenter := func(seedBase int64, relay TxRelayPolicy) uint64 {
		center := startNode(t, seedBase, Config{
			TxInterval: 50 * time.Millisecond,
			TxRelay:    relay,
			MaxPeers:   50,
		})
		var releases []chan struct{}
		for i := int64(0); i < 9; i++ {
			release := make(chan struct{})
			ready := make(chan error, 1)
			go holdSession(t, seedBase+1+i, center, release, ready)
			if err := <-ready; err != nil {
				t.Fatal(err)
			}
			releases = append(releases, release)
		}
		if !center.WaitForPeers(9, 5*time.Second) {
			t.Fatal("holders never registered")
		}
		// Count sends over a fixed measurement window only.
		s0, _ := center.Counters.Snapshot()
		time.Sleep(600 * time.Millisecond)
		s1, _ := center.Counters.Snapshot()
		for _, r := range releases {
			close(r)
		}
		return s1["TRANSACTIONS"] - s0["TRANSACTIONS"]
	}

	all := runCenter(220, RelayAll)
	sqrt := runCenter(240, RelaySqrt)
	if all == 0 || sqrt == 0 {
		t.Fatalf("no traffic: all=%d sqrt=%d", all, sqrt)
	}
	// √9 = 3 of 9 peers: expect sqrt ≈ all/3; require < 60% to
	// tolerate scheduling jitter.
	if float64(sqrt) > 0.6*float64(all) {
		t.Errorf("sqrt policy sent %d vs broadcast-all %d; expected ≈1/3", sqrt, all)
	}
}

// nullDiscovery/nullDialer satisfy the Finder interfaces for a
// listener-only crawler.
type nullDiscovery struct{ self enode.ID }

func (d nullDiscovery) Self() enode.ID { return d.self }

func (d nullDiscovery) Lookup(target enode.ID, done func([]*enode.Node)) {
	go done(nil)
}

type nullDialer struct{}

func (nullDialer) Dial(n *enode.Node, kind mlog.ConnType, done func(*nodefinder.DialResult)) {
	go done(&nodefinder.DialResult{Node: n, Kind: kind})
}
