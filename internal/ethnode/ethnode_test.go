package ethnode

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/crypto/secp256k1"
	"repro/internal/devp2p"
	"repro/internal/discv4"
	"repro/internal/enode"
	"repro/internal/eth"
	"repro/internal/nodefinder"
	"repro/internal/nodefinder/mlog"
	"repro/internal/rlpx"
	"repro/internal/testutil/leakcheck"
)

func testKey(t testing.TB, seed int64) *secp256k1.PrivateKey {
	t.Helper()
	k, err := secp256k1.GenerateKey(rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

var mainnetSim = func() *chain.Chain {
	c := chain.New(chain.Config{NetworkID: 1, GenesisSeed: "mainnet-sim", DAOFork: true})
	c.ExtendTo(chain.DAOForkBlock + 30)
	return c
}()

func startNode(t *testing.T, seed int64, cfg Config) *Node {
	t.Helper()
	cfg.Key = testKey(t, seed)
	if cfg.ClientName == "" {
		cfg.ClientName = "Geth/v1.8.11-stable/linux-amd64/go1.10"
	}
	if cfg.Chain == nil {
		cfg.Chain = mainnetSim
	}
	n, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	return n
}

func crawlerDialer(t *testing.T, seed int64, checkDAO bool) *nodefinder.RealDialer {
	t.Helper()
	return &nodefinder.RealDialer{
		Key: testKey(t, seed),
		Hello: devp2p.Hello{
			Version:    devp2p.Version,
			Name:       "NodeFinder/v1.0",
			Caps:       []devp2p.Cap{{Name: "eth", Version: 62}, {Name: "eth", Version: 63}},
			ListenPort: 30303,
		},
		Status:      MainnetStatusFor(mainnetSim),
		DialTimeout: 3 * time.Second,
		CheckDAO:    checkDAO,
	}
}

func dialWith(d *nodefinder.RealDialer, target *Node) *nodefinder.DialResult {
	var (
		res *nodefinder.DialResult
		wg  sync.WaitGroup
	)
	wg.Add(1)
	d.Dial(target.Self(), mlog.ConnDynamicDial, func(r *nodefinder.DialResult) {
		res = r
		wg.Done()
	})
	wg.Wait()
	return res
}

func TestFullHandshakeChain(t *testing.T) {
	leakcheck.Check(t)
	n := startNode(t, 1, Config{})
	res := dialWith(crawlerDialer(t, 100, true), n)
	if res.Err != nil {
		t.Fatalf("dial error: %v", res.Err)
	}
	if res.Hello == nil || res.Hello.Name != "Geth/v1.8.11-stable/linux-amd64/go1.10" {
		t.Fatalf("hello: %+v", res.Hello)
	}
	if res.Status == nil || res.Status.NetworkID != 1 || res.Status.GenesisHash != mainnetSim.GenesisHash() {
		t.Fatalf("status: %+v", res.Status)
	}
	if !res.DAOChecked || res.DAOFork != eth.DAOForkSupported {
		t.Fatalf("DAO: checked=%v stance=%v", res.DAOChecked, res.DAOFork)
	}
	if res.Duration <= 0 {
		t.Error("duration not recorded")
	}
	deadline := time.Now().Add(2 * time.Second)
	for n.PeerCount() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n.PeerCount() != 0 {
		t.Error("peer slot not freed after disconnect")
	}
}

func TestDAOOpposedDetected(t *testing.T) {
	leakcheck.Check(t)
	classic := chain.New(chain.Config{NetworkID: 1, GenesisSeed: "mainnet-sim", DAOFork: false})
	classic.ExtendTo(chain.DAOForkBlock + 30)
	n := startNode(t, 2, Config{Chain: classic})
	res := dialWith(crawlerDialer(t, 101, true), n)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.DAOChecked || res.DAOFork != eth.DAOForkOpposed {
		t.Fatalf("checked=%v stance=%v", res.DAOChecked, res.DAOFork)
	}
}

// holdSession completes the handshake chain against target and keeps
// the peer slot occupied until release closes.
func holdSession(t *testing.T, seed int64, target *Node, release <-chan struct{}, ready chan<- error) {
	key := testKey(t, seed)
	fd, err := net.Dial("tcp4", target.Self().TCPAddr().String())
	if err != nil {
		ready <- err
		return
	}
	defer fd.Close()
	conn, err := rlpx.Initiate(fd, key, target.Self().ID)
	if err != nil {
		ready <- err
		return
	}
	hello := &devp2p.Hello{
		Version: devp2p.Version, Name: "holder",
		Caps: []devp2p.Cap{{Name: "eth", Version: 63}},
		ID:   enode.PubkeyID(&key.Pub),
	}
	theirs, err := devp2p.ExchangeHello(conn, hello)
	if err != nil {
		ready <- err
		return
	}
	if hello.Version >= devp2p.Version && theirs.Version >= devp2p.Version {
		conn.SetSnappy(true)
	}
	offset := devp2p.BaseProtocolLength
	st := MainnetStatusFor(mainnetSim)
	if err := eth.SendStatus(conn, offset, &st); err != nil {
		ready <- err
		return
	}
	if _, err := eth.ReadStatus(conn, offset); err != nil {
		ready <- fmt.Errorf("status: %w", err)
		return
	}
	ready <- nil
	<-release
	devp2p.SendDisconnect(conn, devp2p.DiscQuitting) //nolint:errcheck
}

func TestTooManyPeersDisconnect(t *testing.T) {
	leakcheck.Check(t)
	n := startNode(t, 5, Config{MaxPeers: 1})
	release := make(chan struct{})
	ready := make(chan error, 1)
	go holdSession(t, 103, n, release, ready)
	if err := <-ready; err != nil {
		t.Fatalf("holder: %v", err)
	}
	if !n.WaitForPeers(1, 3*time.Second) {
		t.Fatal("holder never registered")
	}
	res := dialWith(crawlerDialer(t, 104, false), n)
	if res.Disconnect == nil || *res.Disconnect != devp2p.DiscTooManyPeers {
		t.Fatalf("expected Too many peers, got disc=%v err=%v", res.Disconnect, res.Err)
	}
	close(release)
	sent, _ := n.Counters.Snapshot()
	if sent["DISCONNECT:Too many peers"] == 0 {
		t.Error("counter not bumped")
	}
}

func TestUselessPeerStillYieldsHello(t *testing.T) {
	leakcheck.Check(t)
	// When we advertise only bzz, the eth node rejects us as useless
	// — but NodeFinder already captured the HELLO, which is all the
	// DEVp2p census needs.
	n := startNode(t, 7, Config{})
	d := crawlerDialer(t, 105, false)
	d.Hello.Caps = []devp2p.Cap{{Name: "bzz", Version: 2}}
	res := dialWith(d, n)
	if res.Hello == nil {
		t.Fatalf("no hello: %+v", res)
	}
	if res.Status != nil {
		t.Error("status should not exist without shared eth capability")
	}
}

func TestGenesisMismatchStillYieldsStatus(t *testing.T) {
	leakcheck.Check(t)
	other := chain.New(chain.Config{NetworkID: 1, GenesisSeed: "other-chain", Length: 5})
	n := startNode(t, 8, Config{Chain: other})
	res := dialWith(crawlerDialer(t, 106, false), n)
	if res.Status == nil {
		t.Fatalf("no status: err=%v disc=%v", res.Err, res.Disconnect)
	}
	if res.Status.GenesisHash != other.GenesisHash() {
		t.Error("wrong genesis learned")
	}
}

func TestNonEthServiceNode(t *testing.T) {
	leakcheck.Check(t)
	// A Swarm-only node (no chain): HELLO works, then it cuts us off
	// as useless. These are the paper's "non-productive peers".
	n := startNode(t, 9, Config{
		ClientName: "swarm/v0.3",
		Caps:       []devp2p.Cap{{Name: "bzz", Version: 2}},
		Chain:      nil,
	})
	// Force nil chain: startNode injected mainnetSim, so build
	// directly instead.
	n.Close()
	raw, err := Start(Config{
		Key:        testKey(t, 10),
		ClientName: "swarm/v0.3",
		Caps:       []devp2p.Cap{{Name: "bzz", Version: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	var res *nodefinder.DialResult
	var wg sync.WaitGroup
	wg.Add(1)
	crawlerDialer(t, 107, false).Dial(raw.Self(), mlog.ConnDynamicDial, func(r *nodefinder.DialResult) {
		res = r
		wg.Done()
	})
	wg.Wait()
	if res.Hello == nil || res.Hello.Name != "swarm/v0.3" {
		t.Fatalf("hello: %+v err=%v", res.Hello, res.Err)
	}
	if len(res.Hello.Caps) != 1 || res.Hello.Caps[0].Name != "bzz" {
		t.Errorf("caps: %v", res.Hello.Caps)
	}
	if res.Status != nil {
		t.Error("phantom status from non-eth node")
	}
}

func TestDiscoveryIntegration(t *testing.T) {
	leakcheck.Check(t)
	boot := startNode(t, 11, Config{Discovery: true})
	n1 := startNode(t, 12, Config{Discovery: true, Bootnodes: []*enode.Node{boot.Self()}})
	n2 := startNode(t, 13, Config{Discovery: true, Bootnodes: []*enode.Node{boot.Self()}})
	if err := n1.Bond(boot.Self()); err != nil {
		t.Fatal(err)
	}
	if err := n2.Bond(boot.Self()); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(14))
	found := false
	for i := 0; i < 5 && !found; i++ {
		for _, n := range n1.Discovery().Lookup(enode.RandomID(rng)) {
			if n.ID == n2.Self().ID {
				found = true
			}
		}
		if n1.Discovery().Table().Contains(n2.Self().ID) {
			found = true
		}
	}
	if !found {
		t.Fatal("n1 never learned n2 through the bootstrap")
	}
}

func TestEndToEndCrawl(t *testing.T) {
	leakcheck.Check(t)
	// The headline integration test: a NodeFinder over the REAL
	// stack (discv4 + RLPx + DEVp2p + eth over loopback sockets)
	// crawls a small world and produces census-grade logs.
	if testing.Short() {
		t.Skip("integration test")
	}
	boot := startNode(t, 20, Config{Discovery: true})
	world := []*Node{boot}
	names := []string{
		"Geth/v1.8.11-stable/linux-amd64/go1.10",
		"Parity/v1.10.6-stable-xxx/x86_64-linux-gnu/rustc1.26",
		"Geth/v1.7.3-stable/linux-amd64/go1.9",
	}
	for i := 0; i < 3; i++ {
		n := startNode(t, 21+int64(i), Config{
			Discovery:  true,
			Bootnodes:  []*enode.Node{boot.Self()},
			ClientName: names[i],
		})
		if err := n.Bond(boot.Self()); err != nil {
			t.Fatal(err)
		}
		world = append(world, n)
	}

	// The crawler's own discovery endpoint.
	crawlKey := testKey(t, 30)
	udp, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := newCrawlerDiscovery(crawlKey, udp, boot.Self())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.T.Close()
	if err := tr.T.Ping(boot.Self()); err != nil {
		t.Fatal(err)
	}

	col := mlog.NewCollector()
	finder, err := nodefinder.New(nodefinder.Config{
		Discovery:       tr,
		Dialer:          crawlerDialer(t, 31, true),
		Log:             col,
		LookupInterval:  200 * time.Millisecond,
		StaticInterval:  2 * time.Second,
		MaxDynamicDials: 16,
		Seed:            1,
	})
	if err != nil {
		t.Fatal(err)
	}
	finder.AddStatic(boot.Self())
	finder.Start()
	defer finder.Stop()

	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if finder.Stats().SuccessfulConns >= 4 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	st := finder.Stats()
	if st.SuccessfulConns < 4 {
		t.Fatalf("crawled only %d nodes: %+v", st.SuccessfulConns, st)
	}

	// The census must contain every client name in the world.
	seen := map[string]bool{}
	for _, e := range col.Entries() {
		if e.Hello != nil {
			seen[e.Hello.ClientName] = true
		}
	}
	for _, name := range names {
		if !seen[name] {
			t.Errorf("census missing %s (saw %v)", name, seen)
		}
	}
	// Status and DAO data must be present for crawled Mainnet peers.
	hasStatus, hasDAO := false, false
	for _, e := range col.Entries() {
		if e.Status != nil {
			hasStatus = true
		}
		if e.DAOFork == "supported" {
			hasDAO = true
		}
	}
	if !hasStatus || !hasDAO {
		t.Errorf("status=%v dao=%v", hasStatus, hasDAO)
	}
}

// newCrawlerDiscovery builds a RealDiscovery over a fresh discv4
// transport bootstrapped at boot.
func newCrawlerDiscovery(key *secp256k1.PrivateKey, udp *net.UDPConn, boot *enode.Node) (nodefinder.RealDiscovery, error) {
	tr, err := discv4.Listen(discv4.UDPConn{UDPConn: udp}, discv4.Config{
		Key:         key,
		AnnounceTCP: 30303,
		Bootnodes:   []*enode.Node{boot},
		RespTimeout: 500 * time.Millisecond,
		Seed:        99,
	})
	if err != nil {
		return nodefinder.RealDiscovery{}, err
	}
	return nodefinder.RealDiscovery{T: tr}, nil
}
