// Package ethnode implements a miniature but protocol-complete
// Ethereum node: RLPx listener, outbound dialing, DEVp2p session
// handling, eth STATUS exchange, block-header serving, and
// transaction broadcast.
//
// It exists so NodeFinder can be exercised end-to-end over real
// sockets: a population of ethnodes with configurable client names,
// capabilities, chains, and peer limits stands in for the live
// network at laptop scale. Its behavioral knobs mirror the client
// differences the paper measures: maximum peer count (Geth 25 vs
// Parity 50), disconnect behavior, subprotocol sets, and the
// transaction relay policies of §3 (Geth broadcasts to all peers,
// Parity to √n).
package ethnode

import (
	"errors"
	"fmt"
	"math"
	"math/big"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/chain"
	"repro/internal/crypto/secp256k1"
	"repro/internal/devp2p"
	"repro/internal/discv4"
	"repro/internal/enode"
	"repro/internal/eth"
	"repro/internal/rlp"
	"repro/internal/rlpx"
)

// TxRelayPolicy selects which peers receive transaction broadcasts.
type TxRelayPolicy int

// Relay policies from the §3 case study.
const (
	// RelayAll is Geth's policy: broadcast to every peer.
	RelayAll TxRelayPolicy = iota
	// RelaySqrt is Parity's policy: broadcast to √n peers.
	RelaySqrt
)

// Config parameterizes a node.
type Config struct {
	Key        *secp256k1.PrivateKey
	ClientName string
	// Caps are the advertised capabilities; default is eth/62+63.
	Caps []devp2p.Cap
	// Chain is the blockchain this node serves; nil nodes speak
	// DEVp2p but have no eth service ("non-productive peers").
	Chain *chain.Chain
	// MaxPeers is the concurrent peer limit (Geth defaults to 25,
	// Parity to 50). Zero means 25.
	MaxPeers int
	// ListenAddr is the TCP listen address; empty picks an ephemeral
	// loopback port.
	ListenAddr string
	// Discovery enables a discv4 transport on the same port number.
	Discovery bool
	// Bootnodes seed the discovery table.
	Bootnodes []*enode.Node
	// DiscoveryMetric overrides the table distance metric, allowing
	// Parity's buggy metric to be modeled (§6.3).
	DiscoveryMetric discv4.DistanceFunc
	// DialPeers enables the outbound dial loop: the node fills its
	// peer slots from discovery results like a normal client.
	DialPeers bool
	// TxInterval enables periodic transaction broadcast to connected
	// peers (zero disables).
	TxInterval time.Duration
	// TxRelay selects the broadcast policy.
	TxRelay TxRelayPolicy
	// Seed drives deterministic internals.
	Seed int64
}

// MsgCounters tallies base and eth protocol messages by direction,
// the instrumentation of the §3 case study.
type MsgCounters struct {
	mu   sync.Mutex
	Sent map[string]uint64
	Recv map[string]uint64
}

func newMsgCounters() *MsgCounters {
	return &MsgCounters{Sent: map[string]uint64{}, Recv: map[string]uint64{}}
}

func (m *MsgCounters) bump(sent bool, name string) {
	m.mu.Lock()
	if sent {
		m.Sent[name]++
	} else {
		m.Recv[name]++
	}
	m.mu.Unlock()
}

// Snapshot returns copies of the counter maps.
func (m *MsgCounters) Snapshot() (sent, recv map[string]uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	sent = make(map[string]uint64, len(m.Sent))
	recv = make(map[string]uint64, len(m.Recv))
	for k, v := range m.Sent {
		sent[k] = v
	}
	for k, v := range m.Recv {
		recv[k] = v
	}
	return sent, recv
}

// peerSession is one live peer connection.
type peerSession struct {
	conn   *rlpx.Conn
	ethCap *devp2p.NegotiatedCap
	wmu    sync.Mutex // serializes frame writes
}

// write sends one message under the session write lock.
func (p *peerSession) write(code uint64, payload []byte) error {
	p.wmu.Lock()
	defer p.wmu.Unlock()
	return p.conn.WriteMsg(code, payload)
}

// Node is a running mini Ethereum node.
type Node struct {
	cfg      Config
	ln       net.Listener
	disc     *discv4.Transport
	self     enode.ID
	Counters *MsgCounters

	mu       sync.Mutex
	peers    map[enode.ID]*peerSession
	closed   bool
	wg       sync.WaitGroup
	stopOnce sync.Once
	done     chan struct{}
}

// Start launches the node's listener (and discovery, dialing, and
// transaction broadcast, if enabled).
func Start(cfg Config) (*Node, error) {
	if cfg.Key == nil {
		return nil, errors.New("ethnode: config requires a key")
	}
	if cfg.MaxPeers == 0 {
		cfg.MaxPeers = 25
	}
	if cfg.Caps == nil && cfg.Chain != nil {
		cfg.Caps = []devp2p.Cap{{Name: "eth", Version: 62}, {Name: "eth", Version: 63}}
	}
	addr := cfg.ListenAddr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp4", addr)
	if err != nil {
		return nil, fmt.Errorf("ethnode: listen: %w", err)
	}
	n := &Node{
		cfg:      cfg,
		ln:       ln,
		self:     enode.PubkeyID(&cfg.Key.Pub),
		Counters: newMsgCounters(),
		peers:    make(map[enode.ID]*peerSession),
		done:     make(chan struct{}),
	}
	if cfg.Discovery {
		port := ln.Addr().(*net.TCPAddr).Port
		udpConn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: port})
		if err != nil {
			ln.Close()
			return nil, fmt.Errorf("ethnode: udp listen: %w", err)
		}
		n.disc, err = discv4.Listen(discv4.UDPConn{UDPConn: udpConn}, discv4.Config{
			Key:         cfg.Key,
			AnnounceTCP: uint16(port),
			Bootnodes:   cfg.Bootnodes,
			Distance:    cfg.DiscoveryMetric,
			Seed:        cfg.Seed,
		})
		if err != nil {
			ln.Close()
			return nil, err
		}
	}
	n.wg.Add(1)
	go n.acceptLoop()
	if cfg.DialPeers {
		if n.disc == nil {
			ln.Close()
			return nil, errors.New("ethnode: DialPeers requires Discovery")
		}
		n.wg.Add(1)
		go n.dialLoop()
	}
	if cfg.TxInterval > 0 {
		n.wg.Add(1)
		go n.txLoop()
	}
	return n, nil
}

// Self returns this node's enode record.
func (n *Node) Self() *enode.Node {
	addr := n.ln.Addr().(*net.TCPAddr)
	return enode.New(n.self, addr.IP, uint16(addr.Port), uint16(addr.Port))
}

// Discovery returns the node's discv4 transport, if enabled.
func (n *Node) Discovery() *discv4.Transport { return n.disc }

// PeerCount returns the number of connected peers.
func (n *Node) PeerCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.peers)
}

// Bond pings a peer over discovery so lookups succeed.
func (n *Node) Bond(other *enode.Node) error {
	if n.disc == nil {
		return errors.New("ethnode: discovery disabled")
	}
	return n.disc.Ping(other)
}

// Close shuts the node down.
func (n *Node) Close() {
	n.stopOnce.Do(func() {
		n.mu.Lock()
		n.closed = true
		sessions := make([]*peerSession, 0, len(n.peers))
		for _, p := range n.peers {
			sessions = append(sessions, p)
		}
		n.mu.Unlock()
		close(n.done)
		n.ln.Close()
		for _, p := range sessions {
			p.conn.Close()
		}
		if n.disc != nil {
			n.disc.Close()
		}
	})
	n.wg.Wait()
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		fd, err := n.ln.Accept()
		if err != nil {
			return
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			defer fd.Close()
			conn, err := rlpx.Accept(fd, n.cfg.Key)
			if err != nil {
				return
			}
			n.runSession(conn)
		}()
	}
}

// dialLoop fills free peer slots from discovery results, the way a
// normal client does ("The discovery process is initiated whenever
// the client has room for more peers", §4).
func (n *Node) dialLoop() {
	defer n.wg.Done()
	rng := rand.New(rand.NewSource(n.cfg.Seed ^ 0xd1a7))
	ticker := time.NewTicker(500 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-n.done:
			return
		case <-ticker.C:
		}
		if n.PeerCount() >= n.cfg.MaxPeers {
			continue
		}
		candidates := n.disc.Lookup(enode.RandomID(rng))
		for _, cand := range candidates {
			if cand.ID == n.self || n.hasPeer(cand.ID) {
				continue
			}
			if n.PeerCount() >= n.cfg.MaxPeers {
				break
			}
			n.wg.Add(1)
			go func(target *enode.Node) {
				defer n.wg.Done()
				n.dialPeer(target)
			}(cand)
		}
	}
}

func (n *Node) hasPeer(id enode.ID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	_, ok := n.peers[id]
	return ok
}

// dialPeer establishes an outbound session.
func (n *Node) dialPeer(target *enode.Node) {
	fd, err := net.DialTimeout("tcp", target.TCPAddr().String(), 5*time.Second)
	if err != nil {
		return
	}
	defer fd.Close()
	conn, err := rlpx.Initiate(fd, n.cfg.Key, target.ID)
	if err != nil {
		return
	}
	n.runSession(conn)
}

// runSession performs the DEVp2p + eth handshakes and serves the
// session until it ends. Both inbound and outbound sessions share
// this path.
func (n *Node) runSession(conn *rlpx.Conn) {
	remoteID := conn.RemoteID()

	ours := &devp2p.Hello{
		Version:    devp2p.Version,
		Name:       n.cfg.ClientName,
		Caps:       n.cfg.Caps,
		ListenPort: uint64(n.ln.Addr().(*net.TCPAddr).Port),
		ID:         n.self,
	}
	n.Counters.bump(true, "HELLO")
	theirs, err := devp2p.ExchangeHello(conn, ours)
	if err != nil {
		var de devp2p.DisconnectError
		if errors.As(err, &de) {
			n.Counters.bump(false, "DISCONNECT:"+de.Reason.String())
		}
		return
	}
	n.Counters.bump(false, "HELLO")
	if ours.Version >= devp2p.Version && theirs.Version >= devp2p.Version {
		conn.SetSnappy(true)
	}

	// Peer limit: the "Too many peers" path that dominates Table 1.
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	if len(n.peers) >= n.cfg.MaxPeers {
		n.mu.Unlock()
		n.Counters.bump(true, "DISCONNECT:"+devp2p.DiscTooManyPeers.String())
		devp2p.SendDisconnect(conn, devp2p.DiscTooManyPeers) //nolint:errcheck
		return
	}
	if _, dup := n.peers[remoteID]; dup {
		n.mu.Unlock()
		n.Counters.bump(true, "DISCONNECT:"+devp2p.DiscAlreadyConnected.String())
		devp2p.SendDisconnect(conn, devp2p.DiscAlreadyConnected) //nolint:errcheck
		return
	}
	session := &peerSession{conn: conn}
	n.peers[remoteID] = session
	n.mu.Unlock()
	defer func() {
		n.mu.Lock()
		delete(n.peers, remoteID)
		n.mu.Unlock()
	}()

	// Capability match; useless peers are cut loose like Geth does.
	// ethCap is read concurrently by the broadcast loop, so the
	// assignment happens under the node lock.
	caps := devp2p.MatchCaps(ours.Caps, theirs.Caps, map[string]uint64{eth.ProtocolName: eth.ProtocolLength})
	var ethCap *devp2p.NegotiatedCap
	for i := range caps {
		if caps[i].Name == eth.ProtocolName {
			ethCap = &caps[i]
		}
	}
	n.mu.Lock()
	session.ethCap = ethCap
	n.mu.Unlock()
	if ethCap == nil || n.cfg.Chain == nil {
		n.Counters.bump(true, "DISCONNECT:"+devp2p.DiscUselessPeer.String())
		devp2p.SendDisconnect(conn, devp2p.DiscUselessPeer) //nolint:errcheck
		return
	}

	// eth STATUS exchange.
	c := n.cfg.Chain
	ourStatus := &eth.Status{
		ProtocolVersion: uint32(session.ethCap.Version),
		NetworkID:       c.NetworkID,
		TD:              c.TD(),
		BestHash:        c.HeadHash(),
		GenesisHash:     c.GenesisHash(),
	}
	n.Counters.bump(true, "STATUS")
	payload, err := rlp.EncodeToBytes(ourStatus)
	if err != nil {
		return
	}
	if err := session.write(session.ethCap.Offset+eth.StatusMsg, payload); err != nil {
		return
	}
	theirStatus, err := eth.ReadStatus(conn, session.ethCap.Offset)
	if err != nil {
		return
	}
	n.Counters.bump(false, "STATUS")
	if theirStatus.NetworkID != ourStatus.NetworkID || theirStatus.GenesisHash != ourStatus.GenesisHash {
		n.Counters.bump(true, "DISCONNECT:"+devp2p.DiscSubprotocolError.String())
		devp2p.SendDisconnect(conn, devp2p.DiscSubprotocolError) //nolint:errcheck
		return
	}

	// Long-lived session: disable the per-read deadline (Close
	// unblocks the read); writes keep the standard deadline.
	conn.SetTimeouts(0, rlpx.FrameWriteTimeout)
	n.serve(session)
}

// serve handles inbound messages until the session ends.
func (n *Node) serve(p *peerSession) {
	for {
		code, payload, err := p.conn.ReadMsg()
		if err != nil {
			return
		}
		switch {
		case code == devp2p.PingMsg:
			n.Counters.bump(false, "PING")
			n.Counters.bump(true, "PONG")
			if err := p.write(devp2p.PongMsg, []byte{0xC0}); err != nil {
				return
			}
		case code == devp2p.DiscMsg:
			reason := devp2p.DecodeDisconnect(payload)
			n.Counters.bump(false, "DISCONNECT:"+reason.String())
			return
		case code == p.ethCap.Offset+eth.GetBlockHeadersMsg:
			n.Counters.bump(false, "GET_BLOCK_HEADERS")
			var req eth.GetBlockHeaders
			if err := rlp.DecodeBytes(payload, &req); err != nil {
				return
			}
			headers := eth.ServeHeaders(n.cfg.Chain, &req)
			resp, err := rlp.EncodeToBytes(headers)
			if err != nil {
				return
			}
			n.Counters.bump(true, "BLOCK_HEADERS")
			if err := p.write(p.ethCap.Offset+eth.BlockHeadersMsg, resp); err != nil {
				return
			}
		case code == p.ethCap.Offset+eth.TransactionsMsg:
			n.Counters.bump(false, "TRANSACTIONS")
		default:
			n.Counters.bump(false, eth.MsgName(code-p.ethCap.Offset))
		}
	}
}

// txLoop periodically broadcasts a synthetic transaction to connected
// peers per the configured relay policy.
func (n *Node) txLoop() {
	defer n.wg.Done()
	rng := rand.New(rand.NewSource(n.cfg.Seed ^ 0x7a5))
	ticker := time.NewTicker(n.cfg.TxInterval)
	defer ticker.Stop()
	for {
		select {
		case <-n.done:
			return
		case <-ticker.C:
			n.broadcastTx(rng)
		}
	}
}

// broadcastTx sends one synthetic transaction to the selected peers.
func (n *Node) broadcastTx(rng *rand.Rand) {
	blob := make([]byte, 100+rng.Intn(100))
	rng.Read(blob)
	payload, err := rlp.EncodeToBytes([][]byte{blob})
	if err != nil {
		return
	}

	// Capture sessions and their negotiated offsets under the lock;
	// ethCap is written by runSession under the same lock.
	type target struct {
		p      *peerSession
		offset uint64
	}
	n.mu.Lock()
	sessions := make([]target, 0, len(n.peers))
	for _, p := range n.peers {
		if p.ethCap != nil {
			sessions = append(sessions, target{p, p.ethCap.Offset})
		}
	}
	n.mu.Unlock()
	if len(sessions) == 0 {
		return
	}

	targets := sessions
	if n.cfg.TxRelay == RelaySqrt {
		// Parity's policy: √n of the peers.
		k := int(math.Ceil(math.Sqrt(float64(len(sessions)))))
		rng.Shuffle(len(sessions), func(i, j int) { sessions[i], sessions[j] = sessions[j], sessions[i] })
		targets = sessions[:k]
	}
	for _, tg := range targets {
		if err := tg.p.write(tg.offset+eth.TransactionsMsg, payload); err == nil {
			n.Counters.bump(true, "TRANSACTIONS")
		}
	}
}

// MainnetStatusFor builds the STATUS a crawler should announce to be
// accepted by nodes serving chain c.
func MainnetStatusFor(c *chain.Chain) eth.Status {
	return eth.Status{
		ProtocolVersion: uint32(eth.Version63),
		NetworkID:       c.NetworkID,
		TD:              new(big.Int),
		BestHash:        c.GenesisHash(),
		GenesisHash:     c.GenesisHash(),
	}
}

// WaitForPeers polls until the node has at least want peers or the
// timeout elapses; test convenience.
func (n *Node) WaitForPeers(want int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if n.PeerCount() >= want {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return false
}
