// Case study (§3 of the paper): instrument a default Geth and a
// default Parity client for a week and observe how they behave on the
// noisy network — peer convergence (Figure 4), message mix (Figures
// 2-3), and disconnect reasons (Table 1).
//
//	go run ./examples/casestudy [-days 7]
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/devp2p"
	"repro/internal/simnet"
)

func main() {
	days := flag.Int("days", 7, "observation days")
	flag.Parse()

	gcfg := simnet.DefaultGethObserver(1)
	pcfg := simnet.DefaultParityObserver(1)
	gcfg.Duration = time.Duration(*days) * 24 * time.Hour
	pcfg.Duration = gcfg.Duration

	fmt.Printf("running %d-day case study: Geth 1.7.3 (25 peers) vs Parity 1.7.9 (50 peers)\n\n", *days)
	g := simnet.RunCaseStudy(gcfg)
	p := simnet.RunCaseStudy(pcfg)

	fmt.Println("=== Figure 4: peer convergence ===")
	fmt.Printf("Geth:   reached 25 peers in %v; at cap %.1f%% of the time\n", g.TimeToFull, g.OccupancyFraction*100)
	fmt.Printf("Parity: reached 50 peers in %v; at cap %.1f%% of the time\n\n", p.TimeToFull, p.OccupancyFraction*100)

	fmt.Println("=== Figures 2-3: message totals ===")
	printMsgs("Geth received", g.MsgRecv)
	printMsgs("Geth sent", g.MsgSent)
	printMsgs("Parity received", p.MsgRecv)
	printMsgs("Parity sent", p.MsgSent)
	fmt.Printf("Geth broadcasts transactions to ALL peers; Parity relays to √n:\n")
	fmt.Printf("  TX sent — Geth: %d   Parity: %d  (%.1fx)\n\n",
		g.MsgSent["TRANSACTIONS"], p.MsgSent["TRANSACTIONS"],
		float64(g.MsgSent["TRANSACTIONS"])/float64(max64(p.MsgSent["TRANSACTIONS"], 1)))

	fmt.Println("=== Table 1: disconnect reasons ===")
	fmt.Printf("%-24s %12s %12s %12s %12s\n", "Reason", "recv Geth", "recv Parity", "sent Geth", "sent Parity")
	reasons := []devp2p.DisconnectReason{
		devp2p.DiscTooManyPeers, devp2p.DiscSubprotocolError, devp2p.DiscRequested,
		devp2p.DiscUselessPeer, devp2p.DiscAlreadyConnected, devp2p.DiscReadTimeout, devp2p.DiscQuitting,
	}
	for _, r := range reasons {
		fmt.Printf("%-24s %12d %12d %12d %12d\n", r, g.DiscRecv[r], p.DiscRecv[r], g.DiscSent[r], p.DiscSent[r])
	}
	fmt.Println("\nNote the two §3 signatures: sent 'Too many peers' dwarfs everything")
	fmt.Println("(both clients sit at their peer cap), and Parity sends zero")
	fmt.Println("'Subprotocol error' messages — it treats codes past 0x0b as Unknown.")
}

func printMsgs(title string, m map[string]uint64) {
	fmt.Printf("%s:\n", title)
	order := []string{"TRANSACTIONS", "GET_BLOCK_HEADERS", "BLOCK_HEADERS", "GET_BLOCK_BODIES",
		"BLOCK_BODIES", "NEW_BLOCK_HASHES", "NEW_BLOCK", "PING", "PONG", "DISCONNECT"}
	for _, k := range order {
		if v, ok := m[k]; ok {
			fmt.Printf("  %-20s %12d\n", k, v)
		}
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
