// Distance metric friction (§6.3 / Figure 11 / Appendix A): Geth
// computes Kademlia log-distance over the whole 256-bit Keccak hash
// of a node ID; Parity 1.x computed it per byte and summed. This
// example samples random ID pairs through both metrics, prints the
// two distributions, and then demonstrates the operational
// consequence: a routing table built with Parity's metric files nodes
// into the wrong buckets, so its FIND_NODE answers are useless to a
// converging Geth lookup — the paper calls this a potential
// unintentional eclipse.
//
//	go run ./examples/distancemetric [-trials 100000]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/discv4"
	"repro/internal/enode"
)

func main() {
	trials := flag.Int("trials", 100_000, "random ID pairs to sample")
	flag.Parse()
	rng := rand.New(rand.NewSource(42))

	fmt.Printf("sampling %d random node-ID pairs through both metrics (paper: 100K)\n\n", *trials)
	geth := map[int]int{}
	parity := map[int]int{}
	agree := 0
	for i := 0; i < *trials; i++ {
		a := enode.RandomID(rng).Hash()
		b := enode.RandomID(rng).Hash()
		dg, dp := enode.LogDist(a, b), enode.ParityLogDist(a, b)
		geth[dg]++
		parity[dp]++
		if dg == dp {
			agree++
		}
	}

	fmt.Println("=== Figure 11: node distance distributions ===")
	fmt.Println("dist   geth                parity")
	for d := 200; d <= 256; d++ {
		g, p := geth[d], parity[d]
		if g == 0 && p == 0 {
			continue
		}
		fmt.Printf("%4d %7d %-12s %7d %s\n", d, g, bar(g, *trials), p, bar(p, *trials))
	}
	fmt.Printf("\nmetric agreement on random pairs: %d/%d (%.4f%%)\n", agree, *trials, 100*float64(agree)/float64(*trials))
	fmt.Println("(Eq. 1: they agree only when the XOR is of the form 2^k − 1)")

	// Operational consequence: bucket placement disagreement.
	fmt.Println("\n=== routing-table consequence ===")
	self := enode.RandomID(rng)
	gethTab := discv4.NewTable(self, enode.LogDist, 1)
	parityTab := discv4.NewTable(self, enode.ParityLogDist, 1)
	now := time.Now()
	for i := 0; i < 2000; i++ {
		n := enode.New(enode.RandomID(rng), nil, 30303, 30303)
		gethTab.AddSeenNode(n, now)
		parityTab.AddSeenNode(n, now)
	}
	target := enode.RandomID(rng)
	gc := gethTab.Closest(target, 16)
	pc := parityTab.Closest(target, 16)

	// How useful are the Parity table's "closest" answers to a Geth
	// node converging on target? Compare true (Geth-metric) distance.
	th := target.Hash()
	gBest, pBest := 257, 257
	for _, n := range gc {
		if d := enode.LogDist(n.ID.Hash(), th); d < gBest {
			gBest = d
		}
	}
	for _, n := range pc {
		if d := enode.LogDist(n.ID.Hash(), th); d < pBest {
			pBest = d
		}
	}
	fmt.Printf("closest answer by true log-distance — geth table: %d, parity table: %d\n", gBest, pBest)
	overlap := 0
	for _, a := range gc {
		for _, b := range pc {
			if a.ID == b.ID {
				overlap++
			}
		}
	}
	fmt.Printf("overlap of the two 16-node answers: %d/16\n", overlap)
	fmt.Println("a Geth lookup fed only Parity answers converges slower or not at all")
}

func bar(n, total int) string {
	w := n * 200 / total
	if w > 40 {
		w = 40
	}
	return strings.Repeat("#", w)
}
