// Ecosystem census (§6 of the paper): crawl a simulated DEVp2p world
// for a week of virtual time and print the peer-ecosystem analyses:
// the services on DEVp2p (Table 3), the network/genesis diversity
// (Figure 9), the client mix on the verified Mainnet (Table 4), and
// version stability (Table 5) — after applying the §5.4 abusive-IP
// sanitization.
//
//	go run ./examples/ecosystem [-nodes 1200] [-days 7]
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/analysis"
	"repro/internal/nodefinder"
	"repro/internal/nodefinder/mlog"
	"repro/internal/simnet"
)

func main() {
	var (
		nodes = flag.Int("nodes", 1200, "world population")
		days  = flag.Int("days", 7, "virtual crawl days")
		seed  = flag.Int64("seed", 3, "seed")
	)
	flag.Parse()

	cfg := simnet.DefaultConfig(*seed)
	cfg.BaseNodes = *nodes
	w := simnet.NewWorld(cfg)

	col := mlog.NewCollector()
	f, err := nodefinder.New(nodefinder.Config{
		Clock:     w.Clock,
		Discovery: w.NewDiscovery(*seed + 1),
		Dialer:    w.NewDialer(*seed + 2),
		Log:       col,
		Seed:      *seed + 3,
	})
	if err != nil {
		panic(err)
	}
	gen := w.StartIncoming(f, 20*time.Second, *seed+4)
	f.Start()
	fmt.Printf("crawling a %d-node world for %d virtual days...\n", *nodes, *days)
	w.Clock.Advance(time.Duration(*days) * 24 * time.Hour)
	f.Stop()
	gen.Stop()

	obs := analysis.Aggregate(col.Entries())
	san := analysis.Sanitize(obs)
	fmt.Printf("%d log entries; %d identities; removed %d abusive identities at %d IPs (§5.4)\n\n",
		col.Len(), len(obs), len(san.AbusiveNodes), len(san.AbusiveIPs))

	fmt.Println("=== Table 3: DEVp2p services ===")
	for _, r := range analysis.ServiceCensus(san.Kept) {
		fmt.Printf("  %-16s %6d  %6.2f%%\n", r.Key, r.Count, r.Fraction*100)
	}

	nc := analysis.Networks(san.Kept)
	fmt.Println("\n=== Figure 9: networks and blockchains ===")
	fmt.Printf("  distinct networks: %d, distinct genesis hashes: %d\n", nc.DistinctNetworks, nc.DistinctGenesis)
	fmt.Printf("  single-peer networks: %d, Mainnet-genesis impostors: %d\n", nc.SinglePeerNetworks, nc.MainnetGenesisImpostors)
	for i, r := range nc.Networks {
		if i >= 6 {
			break
		}
		fmt.Printf("  %-24s %6d  %6.2f%%\n", r.Key, r.Count, r.Fraction*100)
	}

	mainnet := analysis.MainnetSubset(san.Kept)
	fmt.Printf("\n=== Table 4: clients (verified Mainnet: %d nodes) ===\n", len(mainnet))
	for _, r := range analysis.ClientCensus(mainnet) {
		fmt.Printf("  %-16s %6d  %6.2f%%\n", r.Key, r.Count, r.Fraction*100)
	}

	fmt.Println("\n=== Table 5: version stability ===")
	for _, client := range []string{"Geth", "Parity"} {
		vc := analysis.Versions(mainnet, client)
		fmt.Printf("  %-8s %4d nodes, %5.1f%% stable; top versions:\n", client, vc.Total, vc.StableShare*100)
		for i, r := range vc.Versions {
			if i >= 5 {
				break
			}
			fmt.Printf("    %-20s %5d  %6.2f%%\n", r.Key, r.Count, r.Fraction*100)
		}
	}
}
