// Quickstart: crawl a tiny real network end-to-end.
//
// This example starts a handful of miniature Ethereum nodes (real
// RLPx/DEVp2p/eth over loopback TCP, real discv4 over loopback UDP),
// points a NodeFinder at the bootstrap node, crawls for a few
// seconds, and prints the census — the whole pipeline of the paper at
// desk scale, with no simulation involved.
//
//	go run ./examples/quickstart
package main

import (
	"crypto/rand"
	"fmt"
	"log"
	"net"
	"time"

	"repro/internal/analysis"
	"repro/internal/chain"
	"repro/internal/crypto/secp256k1"
	"repro/internal/devp2p"
	"repro/internal/discv4"
	"repro/internal/enode"
	"repro/internal/ethnode"
	"repro/internal/nodefinder"
	"repro/internal/nodefinder/mlog"
)

func main() {
	// A small Mainnet-like chain all honest nodes serve.
	mainnet := chain.New(chain.Config{NetworkID: 1, GenesisSeed: "quickstart-mainnet", DAOFork: true})
	mainnet.ExtendTo(chain.DAOForkBlock + 16)
	fmt.Printf("simulated Mainnet genesis %s, head block %d\n",
		mainnet.GenesisHash().Short(), mainnet.Head().Number)

	// Boot node plus a mixed population.
	boot := mustNode(ethnode.Config{
		Key: genKey(), ClientName: "Geth/v1.8.11-stable/linux-amd64/go1.10",
		Chain: mainnet, Discovery: true,
	})
	defer boot.Close()
	fmt.Printf("bootstrap: %s\n", boot.Self())

	population := []ethnode.Config{
		{ClientName: "Geth/v1.8.11-stable/linux-amd64/go1.10", Chain: mainnet},
		{ClientName: "Geth/v1.7.3-stable/linux-amd64/go1.9", Chain: mainnet},
		{ClientName: "Parity/v1.10.6-stable/x86_64-linux-gnu/rustc1.26.0", Chain: mainnet, MaxPeers: 50},
		{ClientName: "swarm/v0.3", Caps: []devp2p.Cap{{Name: "bzz", Version: 2}}},
	}
	for i, cfg := range population {
		cfg.Key = genKey()
		cfg.Discovery = true
		cfg.Bootnodes = []*enode.Node{boot.Self()}
		cfg.Seed = int64(i)
		n := mustNode(cfg)
		defer n.Close()
		if err := n.Bond(boot.Self()); err != nil {
			log.Fatalf("bonding node %d: %v", i, err)
		}
	}

	// The crawler: its own discovery endpoint plus the RealDialer.
	key := genKey()
	udp, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		log.Fatal(err)
	}
	disc, err := discv4.Listen(discv4.UDPConn{UDPConn: udp}, discv4.Config{
		Key: key, AnnounceTCP: 30303, Bootnodes: []*enode.Node{boot.Self()},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer disc.Close()
	if err := disc.Ping(boot.Self()); err != nil {
		log.Fatal("bootstrap unreachable: ", err)
	}

	col := mlog.NewCollector()
	finder, err := nodefinder.New(nodefinder.Config{
		Discovery: nodefinder.RealDiscovery{T: disc},
		Dialer: &nodefinder.RealDialer{
			Key: key,
			Hello: devp2p.Hello{
				Version: devp2p.Version, Name: "NodeFinder/quickstart",
				Caps:       []devp2p.Cap{{Name: "eth", Version: 62}, {Name: "eth", Version: 63}},
				ListenPort: 30303,
			},
			Status:   ethnode.MainnetStatusFor(mainnet),
			CheckDAO: true,
		},
		Log:            col,
		LookupInterval: 200 * time.Millisecond,
		StaticInterval: 2 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	finder.AddStatic(boot.Self())
	finder.Start()
	fmt.Println("crawling for 8 seconds over real sockets...")
	time.Sleep(8 * time.Second)
	finder.Stop()

	st := finder.Stats()
	fmt.Printf("\n%d lookups, %d dynamic dials, %d static dials, %d successful handshakes\n",
		st.DiscoveryAttempts, st.DynamicDials, st.StaticDials, st.SuccessfulConns)

	nodes := analysis.Aggregate(col.Entries())
	fmt.Printf("census: %d distinct identities\n\n", len(nodes))
	fmt.Println("clients seen:")
	for _, r := range analysis.ClientCensus(nodes) {
		fmt.Printf("  %-12s %3d\n", r.Key, r.Count)
	}
	fmt.Println("services seen:")
	for _, r := range analysis.ServiceCensus(nodes) {
		fmt.Printf("  %-12s %3d\n", r.Key, r.Count)
	}
	daoSupporters := 0
	for _, o := range nodes {
		if analysis.IsMainnetLike(o, mainnet.GenesisHash().Hex()) {
			daoSupporters++
		}
	}
	fmt.Printf("verified Mainnet (pro-DAO) nodes: %d\n", daoSupporters)
}

func genKey() *secp256k1.PrivateKey {
	k, err := secp256k1.GenerateKey(rand.Reader)
	if err != nil {
		log.Fatal(err)
	}
	return k
}

func mustNode(cfg ethnode.Config) *ethnode.Node {
	n, err := ethnode.Start(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return n
}
