// Package repro's root benchmark harness: one testing.B benchmark per
// table and figure in the paper's evaluation, each running a
// scaled-down version of the corresponding experiment and reporting
// its headline quantity as a custom metric. Run with:
//
//	go test -bench=. -benchmem
//
// The full-scale regeneration (82 virtual days, larger world) is
// cmd/experiments; these benches exist so `go test -bench` exercises
// every experiment path and tracks its cost.
package repro

import (
	"errors"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/enode"
	"repro/internal/experiments"
	"repro/internal/nodefinder"
	"repro/internal/nodefinder/mlog"
	"repro/internal/simnet"
)

// benchCrawl caches one quick crawl across benchmarks in a single
// bench invocation.
var benchCrawl *experiments.LongRun

func getCrawl(b *testing.B) *experiments.LongRun {
	b.Helper()
	if benchCrawl == nil {
		cfg := experiments.QuickCrawl()
		cfg.Days = 6
		run, err := experiments.RunCrawl(cfg)
		if err != nil {
			b.Fatal(err)
		}
		benchCrawl = run
	}
	return benchCrawl
}

func requirePass(b *testing.B, r *experiments.Result) {
	b.Helper()
	if !r.Pass && r.ID != "fig10" { // fig10 needs long windows
		b.Fatalf("%s failed shape check: %s", r.ID, r.Measured)
	}
}

func BenchmarkTable1DisconnectReasons(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// Full 7-day observers: the rare disconnect classes (Geth's
		// Subprotocol-error sends) need the whole window to appear.
		r := experiments.Table1(int64(i), 0)
		requirePass(b, r)
	}
}

func BenchmarkFig2MessageMix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig2And3(int64(i), 0)
		requirePass(b, r)
	}
}

func BenchmarkFig4PeerConvergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// Full 7-day observers: sub-cap occupancy comes from blips
		// that may not occur in a short window.
		r := experiments.Fig4(int64(i), 0)
		requirePass(b, r)
	}
}

func BenchmarkFig5DiscoveryRate(b *testing.B) {
	run := getCrawl(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requirePass(b, experiments.Fig5(run))
	}
}

func BenchmarkFig6Fig7DialResponse(b *testing.B) {
	run := getCrawl(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requirePass(b, experiments.Fig6And7(run))
	}
}

func BenchmarkFig8StaticDialRate(b *testing.B) {
	run := getCrawl(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requirePass(b, experiments.Fig8(run))
	}
}

func BenchmarkTable2EthernodesIntersection(b *testing.B) {
	run := getCrawl(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requirePass(b, experiments.Table2(run))
	}
}

func BenchmarkTable3Services(b *testing.B) {
	run := getCrawl(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requirePass(b, experiments.Table3(run))
	}
}

func BenchmarkFig9NetworksGenesis(b *testing.B) {
	run := getCrawl(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requirePass(b, experiments.Fig9(run))
	}
}

func BenchmarkTable4Clients(b *testing.B) {
	run := getCrawl(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requirePass(b, experiments.Table4(run))
	}
}

func BenchmarkTable5Versions(b *testing.B) {
	run := getCrawl(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requirePass(b, experiments.Table5(run))
	}
}

func BenchmarkFig10VersionAdoption(b *testing.B) {
	run := getCrawl(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiments.Fig10(run) // shape needs long windows; cost tracked here
	}
}

func BenchmarkFig11DistanceMetrics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requirePass(b, experiments.Fig11(20_000, int64(i)))
	}
}

func BenchmarkTable6NetworkSize(b *testing.B) {
	run := getCrawl(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requirePass(b, experiments.Table6(run))
	}
}

func BenchmarkFig12Geography(b *testing.B) {
	run := getCrawl(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requirePass(b, experiments.Fig12(run))
	}
}

func BenchmarkFig13LatencyCDF(b *testing.B) {
	run := getCrawl(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requirePass(b, experiments.Fig13(run))
	}
}

func BenchmarkFig14Freshness(b *testing.B) {
	run := getCrawl(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requirePass(b, experiments.Fig14(run))
	}
}

func BenchmarkExtChurn(b *testing.B) {
	run := getCrawl(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requirePass(b, experiments.ExtChurn(run))
	}
}

func BenchmarkExtMultiInstance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requirePass(b, experiments.ExtMultiInstance(int64(i)+1000, 3, 120, 12))
	}
}

// BenchmarkFullCrawl tracks the cost of the crawl that feeds most
// experiments: one virtual day over a quick world per iteration.
func BenchmarkFullCrawl(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := experiments.QuickCrawl()
		cfg.Days = 1
		cfg.Seed = int64(i)
		if _, err := experiments.RunCrawl(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benches for the DESIGN.md design choices ---

// BenchmarkAblationStaticInterval sweeps the static re-dial interval
// and reports coverage (identities seen) per dial cost.
func BenchmarkAblationStaticInterval(b *testing.B) {
	for _, interval := range []time.Duration{5 * time.Minute, 30 * time.Minute, 2 * time.Hour} {
		b.Run(interval.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st := runAblationCrawl(b, interval, 0)
				b.ReportMetric(float64(st.KnownNodes), "identities")
				b.ReportMetric(float64(st.StaticDials), "static-dials")
			}
		})
	}
}

// BenchmarkAblationPeerLimit compares census coverage of NodeFinder
// (unlimited) against a limit-respecting client that stops dialing
// once it has enough peers.
func BenchmarkAblationPeerLimit(b *testing.B) {
	for _, name := range []string{"unlimited", "respect-25"} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				limit := 0
				if name == "respect-25" {
					limit = 25
				}
				st := runAblationCrawl(b, 30*time.Minute, limit)
				b.ReportMetric(float64(st.SuccessfulConns), "handshakes")
				b.ReportMetric(float64(st.KnownNodes), "identities")
			}
		})
	}
}

func runAblationCrawl(b *testing.B, staticInterval time.Duration, successCap int) nodefinder.Stats {
	b.Helper()
	cfg := simnet.DefaultConfig(99)
	cfg.BaseNodes = 200
	w := simnet.NewWorld(cfg)

	var dialer nodefinder.Dialer = w.NewDialer(7)
	var capped *cappedDialer
	if successCap > 0 {
		// A limit-respecting client stops establishing new sessions
		// once it holds enough peers: model by cutting the dialer
		// off after the cap.
		capped = &cappedDialer{w: w, inner: dialer, cap: successCap}
		dialer = capped
	}
	f, err := nodefinder.New(nodefinder.Config{
		Clock:          w.Clock,
		Discovery:      w.NewDiscovery(8),
		Dialer:         dialer,
		Log:            mlog.NewCollector(),
		StaticInterval: staticInterval,
		Seed:           9,
	})
	if err != nil {
		b.Fatal(err)
	}
	if capped != nil {
		capped.f = f
	}
	f.Start()
	w.Clock.Advance(24 * time.Hour)
	f.Stop()
	return f.Stats()
}

// cappedDialer refuses new dials once the finder holds cap successes.
type cappedDialer struct {
	w     *simnet.World
	inner nodefinder.Dialer
	f     *nodefinder.Finder
	cap   int
}

func (c *cappedDialer) Dial(n *enode.Node, kind mlog.ConnType, done func(*nodefinder.DialResult)) {
	if c.f != nil && int(c.f.Stats().SuccessfulConns) >= c.cap {
		// Behave like a client with no free peer slots: no outbound
		// session attempt is made. Deliver the refusal on the clock
		// to preserve the async Dialer contract.
		start := c.w.Clock.Now()
		c.w.Clock.AfterFunc(time.Millisecond, func() {
			done(&nodefinder.DialResult{Node: n, Kind: kind, Start: start, Err: errPeerCapReached})
		})
		return
	}
	c.inner.Dial(n, kind, done)
}

var errPeerCapReached = errors.New("local peer limit reached")

// BenchmarkSanitization tracks the §5.4 filter's cost on a realistic
// log.
func BenchmarkSanitization(b *testing.B) {
	run := getCrawl(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := analysis.Sanitize(run.Nodes)
		if len(res.AbusiveIPs) == 0 {
			b.Fatal("no abusive IPs found")
		}
	}
}

// BenchmarkLogAggregation tracks entry aggregation cost.
func BenchmarkLogAggregation(b *testing.B) {
	run := getCrawl(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(analysis.Aggregate(run.Entries)) == 0 {
			b.Fatal("no nodes")
		}
	}
}

// BenchmarkDistanceMetricCost compares the raw cost of the two
// metrics from §6.3.
func BenchmarkDistanceMetricCost(b *testing.B) {
	var a, c [32]byte
	for i := range a {
		a[i], c[i] = byte(i*7), byte(i*13+1)
	}
	b.Run("geth", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			enode.LogDist(a, c)
		}
	})
	b.Run("parity", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			enode.ParityLogDist(a, c)
		}
	})
}
