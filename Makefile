# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet test race bench bench-crypto bench-crawl bench-wire bench-serve fmt-check ci experiments quickstart clean fuzz-smoke chaos lint lint-bench

all: build vet test

# Fail if any file needs gofmt (same check CI runs).
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Reproduce the full CI pipeline (.github/workflows/ci.yml) locally.
ci: fmt-check build vet lint lint-bench test race bench-smoke fuzz-smoke chaos bench-wire bench-crawl bench-serve

# 30 seconds of coverage-guided fuzzing per untrusted-input decoder.
# Each target also replays its committed regression corpus first.
FUZZTIME ?= 30s
fuzz-smoke:
	go test -run='^$$' -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) ./internal/rlp
	go test -run='^$$' -fuzz=FuzzPlanVsOracleStruct -fuzztime=$(FUZZTIME) ./internal/rlp
	go test -run='^$$' -fuzz=FuzzPlanVsOracleSlice -fuzztime=$(FUZZTIME) ./internal/rlp
	go test -run='^$$' -fuzz=FuzzPlanVsOracleBigInt -fuzztime=$(FUZZTIME) ./internal/rlp
	go test -run='^$$' -fuzz=FuzzPlanVsOracleCustom -fuzztime=$(FUZZTIME) ./internal/rlp
	go test -run='^$$' -fuzz=FuzzDecodePacket -fuzztime=$(FUZZTIME) ./internal/discv4
	go test -run='^$$' -fuzz=FuzzReadHello -fuzztime=$(FUZZTIME) ./internal/devp2p
	go test -run='^$$' -fuzz=FuzzDecodeDisconnect -fuzztime=$(FUZZTIME) ./internal/devp2p
	go test -run='^$$' -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) ./internal/snappy

# The faultnet chaos suite: hostile peer taxonomy + the mixed
# honest/hostile 215-node crawl, under the race detector.
chaos:
	go test -race -count=1 -run='TestHostileTaxonomy|TestChaosCrawl' ./internal/faultnet

# One-iteration benchmark pass: catches benchmarks that no longer
# compile or panic, without the cost of real measurement. -run='^$'
# keeps the unit tests out of it — they have their own jobs.
.PHONY: bench-smoke
bench-smoke:
	go test -run='^$$' -bench=. -benchtime=1x ./...

# Crawl-at-scale gate: a deterministic-seed 100k-node world crawled to
# census convergence. Emits BENCH_crawl.ci.json (nodes/sec, peak RSS,
# convergence wall-clock) and fails on >60 s wall, >2 GiB RSS, or a
# >20% nodes/sec regression against the committed BENCH_crawl.json.
bench-crawl:
	go run ./cmd/benchcrawl -out BENCH_crawl.ci.json -baseline BENCH_crawl.json

# Wire-codec gate: plan codec vs reflection oracle on the
# handshake-path messages (HELLO, STATUS, discv4 PING). Emits
# BENCH_wire.ci.json and fails if any encode/decode direction falls
# below a 10x allocs/op advantage, or regresses >20% in ns/op against
# the committed BENCH_wire.json.
bench-wire:
	go run ./cmd/benchwire -out BENCH_wire.ci.json -baseline BENCH_wire.json

# Census-serving gate: the handler/concurrency/soak suite under -race,
# then a 30 s benchserve run with 10k in-process clients against a
# snapshot that republishes mid-load. Emits BENCH_serve.ci.json and
# fails on a >0.1% error rate, a >20% req/s regression, or a p99 more
# than 20% over the committed BENCH_serve.json.
bench-serve:
	go test -race -count=1 ./internal/census
	go run ./cmd/benchserve -duration 30s -out BENCH_serve.ci.json -baseline BENCH_serve.json

build:
	go build ./...

# Repo-specific static invariants (see DESIGN.md "Static invariants"):
# bounded wire allocations, clock discipline, taxonomy coverage, no
# locks across conn I/O, conn Close on every path, goroutine
# termination signals, deadlines on dialed-conn I/O, RLP wire
# symmetry, frozen-after-publish, cross-goroutine shared state,
# bounded channel discipline, interprocedural wire-taint tracking.
# -cache reuses the previous run when no source changed
# (content-hashed; hit rate reported on stderr).
lint:
	go run ./cmd/repolint -cache ./...

# lint-bench times the lint gate itself: a cold run then a warm cached
# run, against a scratch cache file so the benchmark never deletes or
# overwrites the developer's warm .repolint.cache. The warm run must
# stay under 10 s — the content-hash cache is what keeps twelve
# interprocedural analyzers cheap enough to sit on every push, so a
# slow warm run is a developer-loop regression even when findings stay
# clean.
lint-bench:
	@set -e; cachefile=$$(mktemp -t repolint-bench.XXXXXX); rm -f "$$cachefile"; \
	trap 'rm -f "$$cachefile"' EXIT; \
	start=$$(date +%s%N); go run ./cmd/repolint -cache -cache-file "$$cachefile" ./... >/dev/null; \
	cold=$$(( ($$(date +%s%N) - start) / 1000000 )); \
	start=$$(date +%s%N); go run ./cmd/repolint -cache -cache-file "$$cachefile" ./... >/dev/null; \
	warm=$$(( ($$(date +%s%N) - start) / 1000000 )); \
	echo "lint-bench: cold $${cold} ms, warm $${warm} ms (warm budget 10000 ms)"; \
	if [ $$warm -gt 10000 ]; then echo "lint-bench: FAIL: warm cached run exceeded 10 s"; exit 1; fi

vet:
	go vet ./...

test:
	go test ./...

# -shuffle=on randomizes test order so inter-test state dependencies
# surface; the seed is printed for reproduction.
race:
	go test -race -shuffle=on ./...

bench:
	go test -bench=. -benchmem ./...

# Crypto hot-path benchmarks: the numbers recorded in
# BENCH_crypto.json come from this target.
bench-crypto:
	go test -run='^$$' -bench=. -benchmem ./internal/crypto/...
	go test -run='^$$' -bench=Packet -benchmem ./internal/discv4
	go test -run='^$$' -bench=FrameRoundTrip -benchmem ./internal/rlpx

# Regenerate every table/figure and EXPERIMENTS.md (full scale).
experiments:
	go run ./cmd/experiments -out EXPERIMENTS.md

# End-to-end crawl over real sockets.
quickstart:
	go run ./examples/quickstart

clean:
	go clean ./...
