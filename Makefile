# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet test race bench experiments quickstart clean

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -bench=. -benchmem ./...

# Regenerate every table/figure and EXPERIMENTS.md (full scale).
experiments:
	go run ./cmd/experiments -out EXPERIMENTS.md

# End-to-end crawl over real sockets.
quickstart:
	go run ./examples/quickstart

clean:
	go clean ./...
