# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet test race bench fmt-check ci experiments quickstart clean

all: build vet test

# Fail if any file needs gofmt (same check CI runs).
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Reproduce the full CI pipeline (.github/workflows/ci.yml) locally.
ci: fmt-check build vet test race bench-smoke

# One-iteration benchmark pass: catches benchmarks that no longer
# compile or panic, without the cost of real measurement.
.PHONY: bench-smoke
bench-smoke:
	go test -bench=. -benchtime=1x ./...

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -bench=. -benchmem ./...

# Regenerate every table/figure and EXPERIMENTS.md (full scale).
experiments:
	go run ./cmd/experiments -out EXPERIMENTS.md

# End-to-end crawl over real sockets.
quickstart:
	go run ./examples/quickstart

clean:
	go clean ./...
