// Command benchserve load-tests the census HTTP layer in-process: it
// builds a deterministic synthetic census population, publishes it
// through a census.Daemon, then drives the handler with thousands of
// concurrent clients (default 10,000) calling ServeHTTP directly —
// no sockets, no file descriptors, pure serving-path cost. A
// background publisher keeps swapping fresh snapshot epochs during
// the run, so the measured path is the one production would see:
// cached reads racing atomic publishes.
//
// Each client runs a realistic request mix — cached censuses,
// If-None-Match revalidations, node lookups, dynamic series slices —
// and records latency into a shared histogram. The run emits
// BENCH_serve.json with req/s, p50/p90/p99, and error rate, and with
// -baseline gates throughput and p99 against the committed figures
// (tolerance ±20% by default) plus an absolute error-rate budget.
//
// Usage:
//
//	benchserve [-clients 10000] [-population 5000] [-duration 10s]
//	           [-republish 250ms] [-seed 42] [-out BENCH_serve.json]
//	           [-baseline BENCH_serve.json] [-tolerance 0.20]
//	           [-p99-tolerance 0.20] [-max-error-rate 0.001]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/census"
	"repro/internal/chain"
	"repro/internal/geo"
	"repro/internal/metrics"
	"repro/internal/nodefinder/mlog"
	"repro/internal/simclock"
)

// Result is the benchmark artifact schema.
type Result struct {
	Clients         int     `json:"clients"`
	Population      int     `json:"population"`
	Seed            int64   `json:"seed"`
	DurationSeconds float64 `json:"duration_seconds"`
	Requests        uint64  `json:"requests"`
	Errors          uint64  `json:"errors"`
	ErrorRate       float64 `json:"error_rate"`
	NotModified     uint64  `json:"not_modified"`
	Republishes     uint64  `json:"republishes"`
	ReqPerSec       float64 `json:"req_per_sec"`
	P50NS           uint64  `json:"p50_ns"`
	P90NS           uint64  `json:"p90_ns"`
	P99NS           uint64  `json:"p99_ns"`
	PeakRSSBytes    int64   `json:"peak_rss_bytes"`
	GoVersion       string  `json:"go_version"`
}

var t0 = time.Date(2018, 4, 18, 0, 0, 0, 0, time.UTC)

func main() {
	var (
		clients      = flag.Int("clients", 10_000, "concurrent in-process clients")
		population   = flag.Int("population", 5_000, "synthetic census population size")
		duration     = flag.Duration("duration", 10*time.Second, "measurement window")
		republish    = flag.Duration("republish", 250*time.Millisecond, "wall interval between snapshot publishes during the run (0 disables)")
		seed         = flag.Int64("seed", 42, "population seed")
		out          = flag.String("out", "BENCH_serve.json", "write the result JSON here ('-' for stdout only)")
		baseline     = flag.String("baseline", "", "compare req/s and p99 against this committed result")
		tolerance    = flag.Float64("tolerance", 0.20, "allowed relative req/s regression vs baseline")
		p99Tolerance = flag.Float64("p99-tolerance", 0.20, "allowed relative p99 growth vs baseline")
		maxErrRate   = flag.Float64("max-error-rate", 0.001, "fail if error rate exceeds this (0 disables)")
	)
	flag.Parse()

	res := run(*clients, *population, *seed, *duration, *republish)

	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchserve:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	os.Stdout.Write(buf) //nolint:errcheck
	if *out != "-" {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchserve:", err)
			os.Exit(1)
		}
	}

	failed := false
	if *maxErrRate > 0 && res.ErrorRate > *maxErrRate {
		fmt.Fprintf(os.Stderr, "FAIL: error rate %.4f%% exceeds budget %.4f%%\n",
			res.ErrorRate*100, *maxErrRate*100)
		failed = true
	}
	if *baseline != "" {
		if err := compareBaseline(res, *baseline, *tolerance, *p99Tolerance); err != nil {
			fmt.Fprintln(os.Stderr, "FAIL:", err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// buildPopulation synthesizes a deterministic measurement log: nodes
// spread across three epochs with a realistic client/network mix, a
// churn tail that departs after the first window, and late arrivals.
func buildPopulation(n int, seed int64, interval time.Duration) []*mlog.Entry {
	rng := rand.New(rand.NewSource(seed))
	mainnet := chain.MainnetGenesisHash.Hex()
	clients := []struct {
		name   string
		weight int
	}{
		{"Geth/v1.8.10-stable/linux-amd64/go1.10", 40},
		{"Geth/v1.8.11-stable/linux-amd64/go1.10", 20},
		{"Geth/v1.8.2-unstable/linux-amd64/go1.10", 7},
		{"Parity-Ethereum/v1.10.6-stable", 22},
		{"Parity-Ethereum/v1.11.1-beta", 5},
		{"cpp-ethereum/v1.3.0", 3},
		{"EthereumJ/v1.8.1", 3},
	}
	var weighted []string
	for _, c := range clients {
		for i := 0; i < c.weight; i++ {
			weighted = append(weighted, c.name)
		}
	}

	var entries []*mlog.Entry
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("%040x", i)
		ip := fmt.Sprintf("%d.%d.%d.%d", 1+rng.Intn(220), rng.Intn(256), rng.Intn(256), 1+rng.Intn(254))
		client := weighted[rng.Intn(len(weighted))]
		// 10% never answer; they exist only as failed dials.
		if rng.Intn(10) == 0 {
			entries = append(entries, &mlog.Entry{
				Time: t0.Add(time.Duration(rng.Int63n(int64(interval)))), NodeID: id, IP: ip,
				ConnType: mlog.ConnDynamicDial, Err: "connection refused",
			})
			continue
		}
		windows := []int{0}
		switch {
		case rng.Intn(4) == 0: // one-shots: first window only
		case rng.Intn(8) == 0: // late arrivals
			windows = []int{1, 2}
		default: // steady population
			windows = []int{0, 1, 2}
		}
		for _, wi := range windows {
			at := t0.Add(time.Duration(wi)*interval + time.Duration(rng.Int63n(int64(interval))))
			e := &mlog.Entry{
				Time: at, NodeID: id, IP: ip, ConnType: mlog.ConnDynamicDial,
				LatencyUS: 500 + rng.Int63n(400_000),
				Hello:     &mlog.HelloInfo{Version: 5, ClientName: client, Caps: []string{"eth/63"}},
			}
			// 85% are Mainnet; the rest impostors and altnets.
			switch {
			case rng.Intn(100) < 85:
				e.Status = &mlog.StatusInfo{ProtocolVersion: 63, NetworkID: 1, GenesisHash: mainnet,
					BestBlock: 5_500_000 + uint64(rng.Intn(60_000))}
				e.DAOFork = "supported"
			case rng.Intn(2) == 0:
				e.Status = &mlog.StatusInfo{ProtocolVersion: 63, NetworkID: uint64(2 + rng.Intn(5000)),
					GenesisHash: mainnet}
				e.DAOFork = "unknown"
			default:
				e.Status = &mlog.StatusInfo{ProtocolVersion: 63, NetworkID: uint64(2 + rng.Intn(50)),
					GenesisHash: fmt.Sprintf("%064x", rng.Int63())}
			}
			entries = append(entries, e)
		}
	}
	return entries
}

// nullWriter is a reusable ResponseWriter that discards bodies while
// keeping status and headers, so 10k clients cost no response
// buffers.
type nullWriter struct {
	h      http.Header
	status int
	bytes  int64
}

func (w *nullWriter) Header() http.Header         { return w.h }
func (w *nullWriter) WriteHeader(c int)           { w.status = c }
func (w *nullWriter) Write(p []byte) (int, error) { w.bytes += int64(len(p)); return len(p), nil }
func (w *nullWriter) reset() {
	clear(w.h)
	w.status = http.StatusOK
}

func run(clients, population int, seed int64, duration, republish time.Duration) *Result {
	clk := simclock.NewSimulated(t0)
	reg := metrics.New()
	d := census.NewDaemon(census.DaemonConfig{
		Clock:   clk,
		Geo:     geo.NewDB(),
		Metrics: reg,
	})
	entries := buildPopulation(population, seed, census.DefaultInterval)
	for _, e := range entries {
		d.Record(e)
	}
	d.Start()
	clk.Advance(4 * census.DefaultInterval) // three finalized windows served
	handler := census.NewHandler(census.ServerConfig{Source: d, Metrics: reg})
	ids := d.Current().NodeIDs()

	latency := reg.Histogram("benchserve.latency_ns")
	var requests, errors, notModified atomic.Uint64

	cachedTargets := []string{
		"/", "/v1/summary", "/v1/clients", "/v1/geo", "/v1/networks",
		"/v1/series/churn", "/v1/series/arrivals",
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(clients)
	start := make(chan struct{})
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(c)))
			w := &nullWriter{h: make(http.Header, 8)}
			req := &http.Request{
				Method: http.MethodGet,
				URL:    &url.URL{Path: "/"},
				Proto:  "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
				Header: make(http.Header, 2),
				Host:   "bench.local",
				Body:   http.NoBody,
			}
			var etag string
			<-start
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// A real client yields to the network between requests;
				// an in-process one must yield to the scheduler, or 10k
				// spinning goroutines starve the publisher (and the
				// ticker) for entire scheduling quanta.
				if i%4 == 0 {
					runtime.Gosched()
				}
				req.Header.Del("If-None-Match")
				req.URL.RawQuery = ""
				switch p := rng.Intn(100); {
				case p < 60: // cached census reads
					req.URL.Path = cachedTargets[rng.Intn(len(cachedTargets))]
				case p < 80: // poll with revalidation
					req.URL.Path = "/v1/summary"
					if etag != "" {
						req.Header.Set("If-None-Match", etag)
					}
				case p < 95: // node lookups
					req.URL.Path = "/v1/nodes/" + ids[rng.Intn(len(ids))]
				default: // dynamic series slice
					req.URL.Path = "/v1/series/churn"
					req.URL.RawQuery = "last=3"
				}
				w.reset()
				began := time.Now()
				handler.ServeHTTP(w, req)
				latency.Observe(uint64(time.Since(began)))
				requests.Add(1)
				switch {
				case w.status == http.StatusNotModified:
					notModified.Add(1)
				case w.status >= 400:
					errors.Add(1)
				}
				if t := w.h.Get("ETag"); t != "" {
					etag = t
				}
			}
		}(c)
	}

	// The publisher keeps the snapshot moving during the measurement:
	// fresh entries, new epoch, atomic swap — while every client reads.
	var republishes uint64
	pubDone := make(chan struct{})
	go func() {
		defer close(pubDone)
		if republish <= 0 {
			return
		}
		tick := time.NewTicker(republish)
		defer tick.Stop()
		rng := rand.New(rand.NewSource(seed + 1_000_003))
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				d.Record(&mlog.Entry{
					Time: clk.Now(), NodeID: fmt.Sprintf("live%032x", republishes),
					IP:       fmt.Sprintf("9.9.%d.%d", rng.Intn(256), 1+rng.Intn(254)),
					ConnType: mlog.ConnDynamicDial,
					Hello:    &mlog.HelloInfo{Version: 5, ClientName: "Geth/v1.8.11-stable", Caps: []string{"eth/63"}},
				})
				clk.Advance(census.DefaultInterval)
				republishes++
			}
		}
	}()

	began := time.Now()
	close(start)
	time.Sleep(duration)
	close(stop)
	wg.Wait()
	<-pubDone
	elapsed := time.Since(began)
	d.Stop()

	total := requests.Load()
	errs := errors.Load()
	q := latency.Snapshot().Quantiles
	res := &Result{
		Clients:         clients,
		Population:      population,
		Seed:            seed,
		DurationSeconds: elapsed.Seconds(),
		Requests:        total,
		Errors:          errs,
		NotModified:     notModified.Load(),
		Republishes:     republishes,
		ReqPerSec:       float64(total) / elapsed.Seconds(),
		P50NS:           q.P50,
		P90NS:           q.P90,
		P99NS:           q.P99,
		PeakRSSBytes:    peakRSS(),
		GoVersion:       runtime.Version(),
	}
	if total > 0 {
		res.ErrorRate = float64(errs) / float64(total)
	}
	return res
}

// compareBaseline enforces the serving contract against the committed
// result: throughput may not regress beyond tol, p99 may not grow
// beyond p99Tol; improvements beyond tolerance nudge a refresh.
func compareBaseline(res *Result, path string, tol, p99Tol float64) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base Result
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	if base.ReqPerSec <= 0 {
		return fmt.Errorf("baseline %s has no req_per_sec", path)
	}
	ratio := res.ReqPerSec / base.ReqPerSec
	switch {
	case ratio < 1-tol:
		return fmt.Errorf("req/s %.0f is %.0f%% below baseline %.0f (tolerance %.0f%%)",
			res.ReqPerSec, (1-ratio)*100, base.ReqPerSec, tol*100)
	case ratio > 1+tol:
		fmt.Fprintf(os.Stderr, "note: req/s %.0f beats baseline %.0f by %.0f%% — refresh BENCH_serve.json\n",
			res.ReqPerSec, base.ReqPerSec, (ratio-1)*100)
	}
	if base.P99NS > 0 && float64(res.P99NS) > float64(base.P99NS)*(1+p99Tol) {
		return fmt.Errorf("p99 %dns exceeds baseline %dns by more than %.0f%%",
			res.P99NS, base.P99NS, p99Tol*100)
	}
	return nil
}

// peakRSS reads VmHWM (the process's high-water resident set) from
// /proc/self/status; 0 on platforms without procfs.
func peakRSS() int64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}
