// Command simworld builds a simulated DEVp2p world and prints its
// composition: the ground truth NodeFinder is later measured against.
//
// Usage:
//
//	simworld [-nodes N] [-seed S] [-advance DURATION]
//	simworld -crawl [-days D] [-metrics-interval DURATION]
//
// The second form runs a NodeFinder crawl over the world with the
// metrics registry wired in, dumping a snapshot every interval of
// virtual time, and finally cross-checks the telemetry against the
// measurement log: the crawl exits non-zero unless the finder.conns
// counters equal the mlog record count exactly.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/metrics"
	"repro/internal/nodefinder"
	"repro/internal/nodefinder/mlog"
	"repro/internal/simnet"
)

func main() {
	var (
		nodes     = flag.Int("nodes", 1500, "base population size")
		seed      = flag.Int64("seed", 1, "world seed")
		advance   = flag.Duration("advance", 24*time.Hour, "virtual time to advance (abusive minting happens over time)")
		crawl     = flag.Bool("crawl", false, "run an instrumented NodeFinder crawl over the world")
		days      = flag.Int("days", 2, "crawl: virtual days to crawl")
		metricsIv = flag.Duration("metrics-interval", 0, "crawl: dump a metrics snapshot this often in virtual time (implies -crawl)")
		hostileFr = flag.Float64("hostile-fraction", 0, "share of the population running faultnet hostile peer behaviors")
	)
	flag.Parse()

	if *crawl || *metricsIv > 0 {
		runCrawl(*nodes, *seed, *days, *metricsIv, *hostileFr)
		return
	}

	cfg := simnet.DefaultConfig(*seed)
	cfg.BaseNodes = *nodes
	cfg.HostileFraction = *hostileFr
	w := simnet.NewWorld(cfg)
	w.Clock.Advance(*advance)
	now := w.Clock.Now()

	services := map[simnet.Service]int{}
	clients := map[simnet.ClientType]int{}
	networks := map[string]int{}
	reachable, online, abusive, mainnet, hostile := 0, 0, 0, 0, 0
	for _, n := range w.Nodes {
		if n.Hostile {
			hostile++
		}
		services[n.Service]++
		if n.Service == simnet.SvcEth {
			clients[n.Client]++
			if n.Network != nil {
				networks[n.Network.Name]++
			}
			if n.Network == w.Mainnet && !n.Abusive {
				mainnet++
			}
		}
		if n.Reachable {
			reachable++
		}
		if n.OnlineAt(now) {
			online++
		}
		if n.Abusive {
			abusive++
		}
	}

	fmt.Printf("World seed=%d at %s (+%s virtual)\n", *seed, now.Format(time.RFC3339), *advance)
	fmt.Printf("Identities: %d total, %d online now, %d reachable, %d abusive, %d hostile, %d genuine Mainnet\n",
		len(w.Nodes), online, reachable, abusive, hostile, mainnet)
	fmt.Printf("Mainnet head: block %d\n\n", w.Mainnet.HeadAt(now))

	fmt.Println("Services:")
	printCounts(convertKeys(services))
	fmt.Println("\neth clients:")
	printCounts(convertKeys(clients))
	fmt.Println("\neth networks:")
	printCounts(networks)

	fmt.Printf("\nAbusive generator IPs: %d\n", len(w.AbusiveAddrs))
	for _, ip := range w.AbusiveAddrs {
		fmt.Printf("  %s\n", ip)
	}
	os.Exit(0)
}

// runCrawl runs an instrumented simulated crawl and reconciles the
// live metrics against the measurement log.
func runCrawl(nodes int, seed int64, days int, metricsIv time.Duration, hostileFr float64) {
	reg := metrics.New()
	cfg := simnet.DefaultConfig(seed)
	cfg.BaseNodes = nodes
	cfg.HostileFraction = hostileFr
	w := simnet.NewWorld(cfg)

	col := mlog.NewCollector()
	dialer := w.NewDialer(seed + 2)
	dialer.Metrics = nodefinder.NewDialerMetrics(reg)
	f, err := nodefinder.New(nodefinder.Config{
		Clock:     w.Clock,
		Discovery: w.NewDiscovery(seed + 1),
		Dialer:    dialer,
		Log:       col,
		Metrics:   reg,
		Seed:      seed + 3,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	gen := w.StartIncoming(f, 20*time.Second, seed+4)

	if metricsIv > 0 {
		var tick func()
		tick = func() {
			fmt.Printf("--- metrics @ %s ---\n", w.Clock.Now().Format(time.RFC3339))
			reg.WriteTo(os.Stdout) //nolint:errcheck
			w.Clock.AfterFunc(metricsIv, tick)
		}
		w.Clock.AfterFunc(metricsIv, tick)
	}

	f.Start()
	for d := 0; d < days; d++ {
		w.Clock.Advance(24 * time.Hour)
		fmt.Fprintf(os.Stderr, "day %d/%d: %d identities known\n", d+1, days, f.Stats().KnownNodes)
	}
	f.Stop()
	gen.Stop()

	fmt.Println("--- final metrics ---")
	reg.WriteTo(os.Stdout) //nolint:errcheck

	// Reconcile telemetry with the measurement log: each recorded
	// connection must have incremented finder.conns exactly once.
	snap := reg.Snapshot()
	attempts := snap.CounterSum("finder.conns")
	records := uint64(len(col.Entries()))
	if attempts != records {
		fmt.Fprintf(os.Stderr, "MISMATCH: finder.conns total %d != %d mlog records\n", attempts, records)
		os.Exit(1)
	}
	fmt.Printf("\nreconciled: finder.conns total %d == %d mlog connection records\n", attempts, records)
}

func convertKeys[K ~string](m map[K]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[string(k)] = v
	}
	return out
}

func printCounts(m map[string]int) {
	type kv struct {
		k string
		v int
	}
	var rows []kv
	total := 0
	for k, v := range m {
		rows = append(rows, kv{k, v})
		total += v
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].v != rows[j].v {
			return rows[i].v > rows[j].v
		}
		return rows[i].k < rows[j].k
	})
	for _, r := range rows {
		fmt.Printf("  %-24s %6d  %5.2f%%\n", r.k, r.v, 100*float64(r.v)/float64(total))
	}
}
