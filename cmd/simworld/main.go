// Command simworld builds a simulated DEVp2p world and prints its
// composition: the ground truth NodeFinder is later measured against.
//
// Usage:
//
//	simworld [-nodes N] [-seed S] [-advance DURATION]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/simnet"
)

func main() {
	var (
		nodes   = flag.Int("nodes", 1500, "base population size")
		seed    = flag.Int64("seed", 1, "world seed")
		advance = flag.Duration("advance", 24*time.Hour, "virtual time to advance (abusive minting happens over time)")
	)
	flag.Parse()

	cfg := simnet.DefaultConfig(*seed)
	cfg.BaseNodes = *nodes
	w := simnet.NewWorld(cfg)
	w.Clock.Advance(*advance)
	now := w.Clock.Now()

	services := map[simnet.Service]int{}
	clients := map[simnet.ClientType]int{}
	networks := map[string]int{}
	reachable, online, abusive, mainnet := 0, 0, 0, 0
	for _, n := range w.Nodes {
		services[n.Service]++
		if n.Service == simnet.SvcEth {
			clients[n.Client]++
			if n.Network != nil {
				networks[n.Network.Name]++
			}
			if n.Network == w.Mainnet && !n.Abusive {
				mainnet++
			}
		}
		if n.Reachable {
			reachable++
		}
		if n.OnlineAt(now) {
			online++
		}
		if n.Abusive {
			abusive++
		}
	}

	fmt.Printf("World seed=%d at %s (+%s virtual)\n", *seed, now.Format(time.RFC3339), *advance)
	fmt.Printf("Identities: %d total, %d online now, %d reachable, %d abusive, %d genuine Mainnet\n",
		len(w.Nodes), online, reachable, abusive, mainnet)
	fmt.Printf("Mainnet head: block %d\n\n", w.Mainnet.HeadAt(now))

	fmt.Println("Services:")
	printCounts(convertKeys(services))
	fmt.Println("\neth clients:")
	printCounts(convertKeys(clients))
	fmt.Println("\neth networks:")
	printCounts(networks)

	fmt.Printf("\nAbusive generator IPs: %d\n", len(w.AbusiveAddrs))
	for _, ip := range w.AbusiveAddrs {
		fmt.Printf("  %s\n", ip)
	}
	os.Exit(0)
}

func convertKeys[K ~string](m map[K]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[string(k)] = v
	}
	return out
}

func printCounts(m map[string]int) {
	type kv struct {
		k string
		v int
	}
	var rows []kv
	total := 0
	for k, v := range m {
		rows = append(rows, kv{k, v})
		total += v
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].v != rows[j].v {
			return rows[i].v > rows[j].v
		}
		return rows[i].k < rows[j].k
	})
	for _, r := range rows {
		fmt.Printf("  %-24s %6d  %5.2f%%\n", r.k, r.v, 100*float64(r.v)/float64(total))
	}
}
