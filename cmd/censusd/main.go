// Command censusd is census-as-a-service: it crawls a deterministic
// simulated Ethereum world with the NodeFinder pipeline, feeds the
// measurement log into a census.Daemon that publishes a snapshot
// every virtual interval, and serves the longitudinal census over
// HTTP. The virtual clock is paced against wall time, so a laptop
// session watches days of virtual churn in minutes.
//
//	censusd [-addr :8424] [-nodes 10000] [-seed 42]
//	        [-interval 30m] [-chunk 5m] [-pace 1s]
//	        [-points 336] [-mlog crawl.jsonl]
//
// Endpoints (all GET, JSON): /v1/summary, /v1/clients, /v1/geo,
// /v1/networks, /v1/series/churn, /v1/series/arrivals,
// /v1/nodes/{id}, /metrics, and an index at /.
//
// The serving path is production-shaped: immutable snapshots behind
// an atomic pointer, bodies pre-marshaled at publish time, strong
// epoch ETags (poll with If-None-Match and pay a 304), bounded
// request bodies, and hard server timeouts.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/census"
	"repro/internal/geo"
	"repro/internal/metrics"
	"repro/internal/nodefinder"
	"repro/internal/nodefinder/mlog"
	"repro/internal/simclock"
	"repro/internal/simnet"
)

func main() {
	var (
		addr     = flag.String("addr", ":8424", "HTTP listen address")
		nodes    = flag.Int("nodes", 10_000, "simulated world population")
		seed     = flag.Int64("seed", 42, "world seed (deterministic crawl)")
		interval = flag.Duration("interval", census.DefaultInterval, "virtual census interval")
		chunk    = flag.Duration("chunk", 5*time.Minute, "virtual time advanced per pace tick")
		pace     = flag.Duration("pace", time.Second, "wall time between virtual chunks")
		points   = flag.Int("points", 336, "served churn series cap (0 = unbounded)")
		mlogPath = flag.String("mlog", "", "also append the raw measurement log here (JSONL)")
	)
	flag.Parse()
	if err := run(*addr, *nodes, *seed, *interval, *chunk, *pace, *points, *mlogPath); err != nil {
		fmt.Fprintln(os.Stderr, "censusd:", err)
		os.Exit(1)
	}
}

func run(addr string, nodes int, seed int64, interval, chunk, pace time.Duration, points int, mlogPath string) error {
	cfg := simnet.DefaultConfig(seed)
	cfg.BaseNodes = nodes
	w := simnet.NewWorld(cfg)

	reg := metrics.New()
	d := census.NewDaemon(census.DaemonConfig{
		Clock:     w.Clock,
		Interval:  interval,
		Geo:       geo.NewDB(),
		Metrics:   reg,
		MaxPoints: points,
	})

	sink := mlog.Sink(d)
	if mlogPath != "" {
		f, err := os.OpenFile(mlogPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		sink = mlog.Tee{mlog.NewWriter(f), d}
	}

	dialer := w.NewDialer(seed + 2)
	dialer.Metrics = nodefinder.NewDialerMetrics(reg)
	f, err := nodefinder.New(nodefinder.Config{
		Clock:         w.Clock,
		Discovery:     w.NewDiscovery(seed + 1),
		Dialer:        dialer,
		Log:           sink,
		Metrics:       reg,
		Seed:          seed + 3,
		LookupWorkers: 4,
		DialShards:    4,
	})
	if err != nil {
		return err
	}

	d.Start() // epoch grid anchored at the crawl start
	gen := w.StartIncoming(f, 30*time.Second, seed+4)
	f.Start()
	defer func() {
		f.Stop()
		gen.Stop()
		d.Stop()
	}()

	handler := census.NewHandler(census.ServerConfig{
		Source:  d,
		Metrics: reg,
		Clock:   simclock.System{},
	})
	srv := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadTimeout:       5 * time.Second,
		ReadHeaderTimeout: 2 * time.Second,
		WriteTimeout:      10 * time.Second,
		IdleTimeout:       60 * time.Second,
		MaxHeaderBytes:    16 << 10,
	}
	serveErr := make(chan error, 1)
	//lint:ignore boundedchan serveErr is cap-1 and ListenAndServe returns exactly once; the send always finds the slot empty
	go func() { serveErr <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "censusd: serving %d-node world on %s (epoch every %s virtual, %s virtual per %s wall)\n",
		nodes, addr, interval, chunk, pace)

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	// Pace the virtual crawl against wall time; every virtual interval
	// boundary the daemon publishes a fresh epoch on its own tick.
	ticker := time.NewTicker(pace)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			fmt.Fprintln(os.Stderr, "censusd: shutting down")
			shutdownCtx, stop := context.WithTimeout(context.Background(), 5*time.Second)
			defer stop()
			return srv.Shutdown(shutdownCtx)
		case err := <-serveErr:
			if errors.Is(err, http.ErrServerClosed) {
				return nil
			}
			return err
		case <-ticker.C:
			w.Clock.Advance(chunk)
			if s := d.Current(); s != nil {
				reg.Gauge("censusd.virtual_hours").Set(int64(s.Time.Sub(s.Start).Hours()))
			}
		}
	}
}
