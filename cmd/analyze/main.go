// Command analyze re-runs the paper's analyses over a saved
// NodeFinder measurement log (the JSONL emitted by cmd/nodefinder's
// -log flag).
//
//	analyze crawl.jsonl
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/geo"
	"repro/internal/nodefinder/mlog"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: analyze [flags] <log.jsonl>")
		flag.PrintDefaults()
	}
	skipSanitize := flag.Bool("raw", false, "skip the §5.4 abusive-IP sanitization")
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	entries, err := mlog.ReadFile(flag.Arg(0))
	if err != nil && len(entries) == 0 {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	if err != nil {
		// A crashed crawl leaves a truncated final line; the records
		// before it are still a valid (partial) measurement.
		fmt.Fprintln(os.Stderr, "warning: log damaged, analyzing partial records:", err)
	}
	fmt.Printf("%d log entries\n", len(entries))

	nodes := analysis.Aggregate(entries)
	fmt.Printf("%d distinct node identities\n", len(nodes))

	if !*skipSanitize {
		san := analysis.Sanitize(nodes)
		fmt.Printf("§5.4 sanitization: removed %d identities at %d abusive IPs\n",
			len(san.AbusiveNodes), len(san.AbusiveIPs))
		for ip, ids := range san.AbusiveIPs {
			fmt.Printf("  %-18s %6d identities\n", ip, len(ids))
		}
		nodes = san.Kept
	}

	fmt.Println("\n=== DEVp2p services (Table 3) ===")
	for _, r := range analysis.ServiceCensus(nodes) {
		fmt.Printf("  %-18s %6d  %6.2f%%\n", r.Key, r.Count, r.Fraction*100)
	}

	nc := analysis.Networks(nodes)
	fmt.Println("\n=== Networks (Figure 9) ===")
	fmt.Printf("  %d networks, %d genesis hashes, %d single-peer networks, %d Mainnet-genesis impostors\n",
		nc.DistinctNetworks, nc.DistinctGenesis, nc.SinglePeerNetworks, nc.MainnetGenesisImpostors)
	for i, r := range nc.Networks {
		if i >= 8 {
			break
		}
		fmt.Printf("  %-24s %6d  %6.2f%%\n", r.Key, r.Count, r.Fraction*100)
	}

	mainnet := analysis.MainnetSubset(nodes)
	fmt.Printf("\n=== Verified Mainnet: %d nodes ===\n", len(mainnet))
	fmt.Println("clients (Table 4):")
	for _, r := range analysis.ClientCensus(mainnet) {
		fmt.Printf("  %-18s %6d  %6.2f%%\n", r.Key, r.Count, r.Fraction*100)
	}
	for _, client := range []string{"Geth", "Parity"} {
		vc := analysis.Versions(mainnet, client)
		if vc.Total == 0 {
			continue
		}
		fmt.Printf("%s versions (Table 5): %d nodes, %.1f%% stable\n", client, vc.Total, vc.StableShare*100)
	}

	gc := analysis.Geography(mainnet, geo.NewDB())
	fmt.Println("\n=== Geography (Figure 12, synthetic geo DB) ===")
	for i, r := range gc.Countries {
		if i >= 6 {
			break
		}
		fmt.Printf("  %-8s %6d  %6.2f%%\n", r.Key, r.Count, r.Fraction*100)
	}
	fmt.Printf("  top-8 AS share %.1f%% (all cloud: %v)\n", gc.Top8ASShare*100, gc.Top8AllCloud)

	lat := analysis.LatencyCDF(mainnet)
	if lat.Len() > 0 {
		fmt.Println("\n=== Latency (Figure 13) ===")
		fmt.Printf("  median %.1f ms, p90 %.1f ms, p99 %.1f ms (%d samples)\n",
			lat.P(0.5), lat.P(0.9), lat.P(0.99), lat.Len())
	}
}
