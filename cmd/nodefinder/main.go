// Command nodefinder runs the measurement crawler.
//
// Two modes:
//
//	nodefinder -sim [-nodes N] [-days D] [-seed S] [-log out.jsonl]
//	    Crawl a simulated DEVp2p world on a virtual clock (the
//	    default; an 82-day measurement completes in seconds).
//
//	nodefinder -real -bootnodes enode://...,enode://... [-duration 30s]
//	    Crawl a real network over UDP/TCP sockets using the full
//	    discv4 + RLPx + DEVp2p + eth stack. Point it at ethnode
//	    instances (see examples/quickstart) or any devp2p-compatible
//	    listener.
//
// Both modes write the measurement log as JSON lines and print a
// summary census on exit. With -metrics-interval, both also dump a
// live crawl-health snapshot (dial outcomes, error taxonomy, table
// gauges, latency histograms) to stderr on that cadence — virtual
// time in sim mode — plus a final snapshot after the crawl.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/crypto/secp256k1"
	"repro/internal/devp2p"
	"repro/internal/discv4"
	"repro/internal/enode"
	"repro/internal/eth"
	"repro/internal/metrics"
	"repro/internal/nodefinder"
	"repro/internal/nodefinder/mlog"
	"repro/internal/rlpx"
	"repro/internal/simclock"
	"repro/internal/simnet"

	cryptorand "crypto/rand"
)

func main() {
	var (
		simMode   = flag.Bool("sim", true, "crawl a simulated world (default)")
		realMode  = flag.Bool("real", false, "crawl a real network over sockets")
		nodes     = flag.Int("nodes", 1200, "sim: world population")
		days      = flag.Int("days", 7, "sim: virtual days to crawl")
		seed      = flag.Int64("seed", 1, "sim: seed")
		bootnodes = flag.String("bootnodes", "", "real: comma-separated enode URLs")
		duration  = flag.Duration("duration", 30*time.Second, "real: wall-clock crawl duration")
		logPath   = flag.String("log", "", "write measurement log (JSONL) to this path")
		metricsIv = flag.Duration("metrics-interval", 0, "dump a metrics snapshot to stderr this often (virtual time in sim mode; 0 disables)")
		metricsFm = flag.String("metrics-format", "text", "periodic snapshot format: text or json")
	)
	flag.Parse()
	if *realMode {
		*simMode = false
	}

	var sinks mlog.Tee
	col := mlog.NewCollector()
	sinks = append(sinks, col)
	if *logPath != "" {
		f, err := os.Create(*logPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w := mlog.NewWriter(f)
		defer w.Flush()
		sinks = append(sinks, w)
	}

	reg := metrics.New()
	dump := snapshotDumper(reg, *metricsFm)

	var st nodefinder.Stats
	var err error
	if *simMode {
		st, err = runSim(*nodes, *days, *seed, sinks, reg, *metricsIv, dump)
	} else {
		st, err = runReal(*bootnodes, *duration, sinks, reg, *metricsIv, dump)
	}
	if err != nil {
		fatal(err)
	}

	fmt.Printf("crawl complete: %d discovery rounds, %d dynamic dials, %d static dials, %d incoming, %d successful\n",
		st.DiscoveryAttempts, st.DynamicDials, st.StaticDials, st.IncomingConns, st.SuccessfulConns)
	fmt.Println("\nfinal metrics:")
	reg.WriteTo(os.Stdout) //nolint:errcheck

	obs := analysis.Aggregate(col.Entries())
	san := analysis.Sanitize(obs)
	fmt.Printf("identities: %d observed, %d removed as abusive (%d IPs), %d kept\n",
		len(obs), len(san.AbusiveNodes), len(san.AbusiveIPs), len(san.Kept))
	fmt.Println("\nDEVp2p services:")
	for _, r := range analysis.ServiceCensus(san.Kept) {
		fmt.Printf("  %-20s %6d  %5.2f%%\n", r.Key, r.Count, r.Fraction*100)
	}
	fmt.Println("\nClients (verified Mainnet subset):")
	for _, r := range analysis.ClientCensus(analysis.MainnetSubset(san.Kept)) {
		fmt.Printf("  %-20s %6d  %5.2f%%\n", r.Key, r.Count, r.Fraction*100)
	}
}

// snapshotDumper returns a function that writes one metrics snapshot
// (stamped with the crawl clock's current time) to stderr. JSON
// format emits exactly one JSON object per line, so the stream can
// be consumed as JSONL.
func snapshotDumper(reg *metrics.Registry, format string) func(now time.Time) {
	return func(now time.Time) {
		if format == "json" {
			line, err := json.Marshal(struct {
				Time     time.Time         `json:"time"`
				Snapshot *metrics.Snapshot `json:"snapshot"`
			}{now, reg.Snapshot()})
			if err == nil {
				fmt.Fprintf(os.Stderr, "%s\n", line)
			}
			return
		}
		fmt.Fprintf(os.Stderr, "--- metrics @ %s ---\n", now.Format(time.RFC3339))
		reg.WriteTo(os.Stderr) //nolint:errcheck
	}
}

// scheduleDumps arms a recurring snapshot dump on the crawl clock
// (virtual in sim mode, so an 82-day run prints its periodic
// snapshots in seconds of wall time).
func scheduleDumps(clock simclock.Clock, interval time.Duration, dump func(now time.Time)) {
	if interval <= 0 {
		return
	}
	var tick func()
	tick = func() {
		dump(clock.Now())
		clock.AfterFunc(interval, tick)
	}
	clock.AfterFunc(interval, tick)
}

func runSim(nodes, days int, seed int64, sink mlog.Sink, reg *metrics.Registry, metricsIv time.Duration, dump func(time.Time)) (nodefinder.Stats, error) {
	cfg := simnet.DefaultConfig(seed)
	cfg.BaseNodes = nodes
	w := simnet.NewWorld(cfg)
	dialer := w.NewDialer(seed + 2)
	dialer.Metrics = nodefinder.NewDialerMetrics(reg)
	f, err := nodefinder.New(nodefinder.Config{
		Clock:     w.Clock,
		Discovery: w.NewDiscovery(seed + 1),
		Dialer:    dialer,
		Log:       sink,
		Metrics:   reg,
		Seed:      seed + 3,
	})
	if err != nil {
		return nodefinder.Stats{}, err
	}
	gen := w.StartIncoming(f, 20*time.Second, seed+4)
	scheduleDumps(w.Clock, metricsIv, dump)
	f.Start()
	for d := 0; d < days; d++ {
		w.Clock.Advance(24 * time.Hour)
		fmt.Fprintf(os.Stderr, "day %d/%d: %d identities known\n", d+1, days, f.Stats().KnownNodes)
	}
	f.Stop()
	gen.Stop()
	return f.Stats(), nil
}

func runReal(bootURLs string, duration time.Duration, sink mlog.Sink, reg *metrics.Registry, metricsIv time.Duration, dump func(time.Time)) (nodefinder.Stats, error) {
	if bootURLs == "" {
		return nodefinder.Stats{}, fmt.Errorf("real mode requires -bootnodes")
	}
	var boots []*enode.Node
	for _, u := range strings.Split(bootURLs, ",") {
		n, err := enode.ParseURL(strings.TrimSpace(u))
		if err != nil {
			return nodefinder.Stats{}, fmt.Errorf("bootnode %q: %w", u, err)
		}
		boots = append(boots, n)
	}

	key, err := secp256k1.GenerateKey(cryptorand.Reader)
	if err != nil {
		return nodefinder.Stats{}, err
	}
	udp, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4zero})
	if err != nil {
		return nodefinder.Stats{}, err
	}
	hello := devp2p.Hello{
		Version:    devp2p.Version,
		Name:       "NodeFinder/v1.0 (research scanner; see DESIGN.md)",
		Caps:       []devp2p.Cap{{Name: "eth", Version: 62}, {Name: "eth", Version: 63}},
		ListenPort: 30303,
	}
	status := eth.Status{
		ProtocolVersion: uint32(eth.Version63),
		NetworkID:       1,
	}

	// The incoming listener and discovery share a port number so
	// peers can dial back; the Finder is attached below, before any
	// peer can have learned the address.
	listener, err := nodefinder.ListenIncoming("", key, hello, status, nil)
	if err != nil {
		return nodefinder.Stats{}, err
	}
	defer listener.Close()
	port := uint16(listener.Addr().Port)
	hello.ListenPort = uint64(port)

	rlpx.EnableMetrics(reg)
	disc, err := discv4.Listen(discv4.UDPConn{UDPConn: udp}, discv4.Config{
		Key:         key,
		AnnounceTCP: port,
		Bootnodes:   boots,
		Metrics:     reg,
	})
	if err != nil {
		return nodefinder.Stats{}, err
	}
	defer disc.Close()

	f, err := nodefinder.New(nodefinder.Config{
		Discovery: nodefinder.RealDiscovery{T: disc},
		Dialer: &nodefinder.RealDialer{
			Key:      key,
			Hello:    hello,
			Status:   status,
			CheckDAO: true,
			Metrics:  nodefinder.NewDialerMetrics(reg),
		},
		Log:            sink,
		Metrics:        reg,
		LookupInterval: time.Second,
		StaticInterval: 10 * time.Second,
	})
	if err != nil {
		return nodefinder.Stats{}, err
	}
	listener.Finder = f
	scheduleDumps(simclock.System{}, metricsIv, dump)
	for _, b := range boots {
		if err := disc.Ping(b); err != nil {
			fmt.Fprintf(os.Stderr, "warning: bootstrap ping %s: %v\n", b.ID.TerminalString(), err)
		}
		f.AddStatic(b)
	}
	f.Start()
	time.Sleep(duration)
	f.Stop()
	return f.Stats(), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
