// Command benchcrawl measures crawl throughput at scale: it builds a
// deterministic-seed analytic world (default 100,000 nodes), crawls
// it with the sharded NodeFinder pipeline to census convergence, and
// emits a BENCH_crawl.json with nodes/sec, peak RSS, and convergence
// wall-clock. The world is event-driven — idle nodes are pure state
// machines — so the bench exercises exactly the promotion-free path a
// large simulated measurement runs on.
//
// Usage:
//
//	benchcrawl [-nodes N] [-seed S] [-out BENCH_crawl.json]
//	           [-baseline BENCH_crawl.json] [-tolerance 0.20]
//	           [-max-wall 60s] [-max-rss 2147483648]
//	           [-cpuprofile cpu.prof] [-memprofile mem.prof]
//	           [-rlp-reflect]
//
// With -baseline, the run compares its nodes/sec against the
// committed figure and exits non-zero on a regression beyond the
// tolerance. The wall-clock and RSS gates always apply (zero
// disables either).
//
// -cpuprofile and -memprofile write pprof profiles of the crawl
// (allocation profiles cover the whole run; the CPU profile stops
// before the gates run). -rlp-reflect disables the compiled RLP codec
// plans for the run, so the two backends can be profiled against each
// other.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"runtime/pprof"

	"repro/internal/metrics"
	"repro/internal/nodefinder"
	"repro/internal/nodefinder/mlog"
	"repro/internal/rlp"
	"repro/internal/simnet"
)

// Result is the benchmark artifact schema.
type Result struct {
	Nodes          int     `json:"nodes"`
	Seed           int64   `json:"seed"`
	DistinctDialed int     `json:"distinct_dialed"`
	TotalConns     uint64  `json:"total_conns"`
	VirtualHours   float64 `json:"virtual_hours"`
	WallSeconds    float64 `json:"wall_seconds"`
	NodesPerSec    float64 `json:"nodes_per_sec"`
	PeakRSSBytes   int64   `json:"peak_rss_bytes"`
	GoVersion      string  `json:"go_version"`
}

// census counts distinct dialed identities. It sits behind an
// mlog.Batcher, so the dial path only ever appends to the batcher's
// buffer; the map update happens on the flusher goroutine.
type census struct {
	mu       sync.Mutex
	distinct map[string]struct{}
	total    uint64
}

func (c *census) Record(e *mlog.Entry) {
	c.mu.Lock()
	c.distinct[e.NodeID] = struct{}{}
	c.total++
	c.mu.Unlock()
}

func (c *census) counts() (int, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.distinct), c.total
}

func main() {
	var (
		nodes      = flag.Int("nodes", 100_000, "world population size")
		seed       = flag.Int64("seed", 42, "world seed (deterministic population)")
		out        = flag.String("out", "BENCH_crawl.json", "write the result JSON here ('-' for stdout only)")
		baseline   = flag.String("baseline", "", "compare nodes/sec against this committed result")
		tolerance  = flag.Float64("tolerance", 0.20, "allowed relative nodes/sec regression vs baseline")
		converge   = flag.Float64("converge", 0.99, "census fraction that counts as converged")
		maxWall    = flag.Duration("max-wall", 60*time.Second, "fail if convergence takes longer than this (0 disables)")
		maxRSS     = flag.Int64("max-rss", 2<<30, "fail if peak RSS exceeds this many bytes (0 disables)")
		verbose    = flag.Bool("v", false, "log progress per virtual chunk")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the crawl here")
		memprofile = flag.String("memprofile", "", "write an allocation profile here at exit")
		rlpReflect = flag.Bool("rlp-reflect", false, "decode/encode RLP via the reflection walker instead of compiled plans")
	)
	flag.Parse()

	rlp.SetPlanCodec(!*rlpReflect)
	if *cpuprofile != "" {
		pf, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcrawl:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			fmt.Fprintln(os.Stderr, "benchcrawl:", err)
			os.Exit(1)
		}
	}

	res, err := run(*nodes, *seed, *converge, *maxWall, *verbose)
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		pf, perr := os.Create(*memprofile)
		if perr != nil {
			fmt.Fprintln(os.Stderr, "benchcrawl:", perr)
			os.Exit(1)
		}
		runtime.GC() // materialize the final heap for the alloc profile
		if perr := pprof.WriteHeapProfile(pf); perr != nil {
			fmt.Fprintln(os.Stderr, "benchcrawl:", perr)
			os.Exit(1)
		}
		pf.Close() //nolint:errcheck
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcrawl:", err)
		os.Exit(1)
	}

	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcrawl:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	os.Stdout.Write(buf) //nolint:errcheck
	if *out != "-" {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchcrawl:", err)
			os.Exit(1)
		}
	}

	failed := false
	if *maxWall > 0 && res.WallSeconds > maxWall.Seconds() {
		fmt.Fprintf(os.Stderr, "FAIL: convergence took %.1fs, budget %s\n", res.WallSeconds, maxWall)
		failed = true
	}
	if *maxRSS > 0 && res.PeakRSSBytes > *maxRSS {
		fmt.Fprintf(os.Stderr, "FAIL: peak RSS %d bytes, budget %d\n", res.PeakRSSBytes, *maxRSS)
		failed = true
	}
	if *baseline != "" {
		if err := compareBaseline(res, *baseline, *tolerance); err != nil {
			fmt.Fprintln(os.Stderr, "FAIL:", err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func run(nodes int, seed int64, converge float64, maxWall time.Duration, verbose bool) (*Result, error) {
	cfg := simnet.DefaultConfig(seed)
	cfg.BaseNodes = nodes
	cfg.AbusiveIPs = 0 // a fixed census target: no identities minted mid-crawl
	w := simnet.NewWorld(cfg)

	reg := metrics.New()
	cen := &census{distinct: make(map[string]struct{}, nodes)}
	batch := mlog.NewBatcher(cen)
	defer batch.Close()

	dialer := w.NewDialer(seed + 2)
	dialer.Metrics = nodefinder.NewDialerMetrics(reg)
	f, err := nodefinder.New(nodefinder.Config{
		Clock:     w.Clock,
		Discovery: w.NewDiscovery(seed + 1),
		Dialer:    dialer,
		Log:       batch,
		Metrics:   reg,
		Seed:      seed + 3,
		// The sharded pipeline at scale: parallel lookup chains feeding
		// sharded bounded queues. Unreachable nodes hold dial slots for
		// the full 15 s virtual timeout, so the dial budget must cover
		// lookupRate × mean dial duration with slack.
		LookupWorkers:   16,
		DialShards:      8,
		MaxDynamicDials: 256,
	})
	if err != nil {
		return nil, err
	}

	target := int(converge * float64(len(w.Nodes)))
	start := time.Now()
	f.Start()
	const chunk = 30 * time.Minute
	virtual := time.Duration(0)
	distinct, total := 0, uint64(0)
	for {
		w.Clock.Advance(chunk)
		virtual += chunk
		distinct, total = cen.counts()
		if verbose {
			fmt.Fprintf(os.Stderr, "virtual %s: %d/%d distinct, %d conns, %.1fs wall\n",
				virtual, distinct, target, total, time.Since(start).Seconds())
		}
		if distinct >= target {
			break
		}
		if maxWall > 0 && time.Since(start) > 2*maxWall {
			// Hard stop at twice the budget: emit the partial result and
			// let the gate below fail it with real numbers attached.
			break
		}
	}
	f.Stop()
	batch.Close()
	distinct, total = cen.counts()
	wall := time.Since(start)

	return &Result{
		Nodes:          len(w.Nodes),
		Seed:           seed,
		DistinctDialed: distinct,
		TotalConns:     total,
		VirtualHours:   virtual.Hours(),
		WallSeconds:    wall.Seconds(),
		NodesPerSec:    float64(distinct) / wall.Seconds(),
		PeakRSSBytes:   peakRSS(),
		GoVersion:      runtime.Version(),
	}, nil
}

// compareBaseline enforces the throughput contract against the
// committed result: a regression beyond tol fails; an improvement
// beyond tol passes with a nudge to refresh the baseline.
func compareBaseline(res *Result, path string, tol float64) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base Result
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	if base.NodesPerSec <= 0 {
		return fmt.Errorf("baseline %s has no nodes_per_sec", path)
	}
	ratio := res.NodesPerSec / base.NodesPerSec
	switch {
	case ratio < 1-tol:
		return fmt.Errorf("nodes/sec %.0f is %.0f%% below baseline %.0f (tolerance %.0f%%)",
			res.NodesPerSec, (1-ratio)*100, base.NodesPerSec, tol*100)
	case ratio > 1+tol:
		fmt.Fprintf(os.Stderr, "note: nodes/sec %.0f beats baseline %.0f by %.0f%% — refresh BENCH_crawl.json\n",
			res.NodesPerSec, base.NodesPerSec, (ratio-1)*100)
	}
	return nil
}

// peakRSS reads VmHWM (the process's high-water resident set) from
// /proc/self/status; 0 on platforms without procfs.
func peakRSS() int64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}
