// Command benchwire measures the zero-alloc wire codec against the
// reflection walker it replaced. For each handshake-path message the
// crawler sends or parses at volume — devp2p HELLO, eth STATUS, and
// the discv4 PING — it benchmarks encode and decode through the
// compiled codec plans (the default path) and through the reflection
// oracle (rlp.OracleEncodeToBytes / rlp.OracleDecodeBytes), then
// emits BENCH_wire.json.
//
// Usage:
//
//	benchwire [-out BENCH_wire.json] [-baseline BENCH_wire.json]
//	          [-tolerance 0.20] [-min-alloc-ratio 10]
//
// Two gates make the result a contract rather than a report:
//
//   - The in-run allocation ratio (oracle allocs/op over plan
//     allocs/op) must reach -min-alloc-ratio for every message and
//     direction. Allocation counts are deterministic, so this gate is
//     machine-independent.
//   - With -baseline, each plan-path ns/op is compared against the
//     committed figure and the run fails on a regression beyond the
//     tolerance (the BENCH_crawl.json pattern).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/big"
	"net"
	"os"
	"runtime"
	"testing"

	"repro/internal/chain"
	"repro/internal/devp2p"
	"repro/internal/discv4"
	"repro/internal/enode"
	"repro/internal/eth"
	"repro/internal/rlp"
)

// Direction is one benchmarked codec direction of one message.
type Direction struct {
	PlanNsOp     float64 `json:"plan_ns_op"`
	PlanAllocs   float64 `json:"plan_allocs_op"`
	OracleNsOp   float64 `json:"oracle_ns_op"`
	OracleAllocs float64 `json:"oracle_allocs_op"`
	AllocRatio   float64 `json:"alloc_ratio"`
	SpeedupX     float64 `json:"speedup_x"`
}

// Message is the per-message benchmark record.
type Message struct {
	Name   string    `json:"name"`
	Bytes  int       `json:"encoded_bytes"`
	Encode Direction `json:"encode"`
	Decode Direction `json:"decode"`
}

// Result is the BENCH_wire.json schema.
type Result struct {
	GoVersion string    `json:"go_version"`
	Messages  []Message `json:"messages"`
}

func main() {
	var (
		out       = flag.String("out", "BENCH_wire.json", "write the result JSON here ('-' for stdout only)")
		baseline  = flag.String("baseline", "", "compare plan ns/op against this committed result")
		tolerance = flag.Float64("tolerance", 0.20, "allowed relative ns/op regression vs baseline")
		minRatio  = flag.Float64("min-alloc-ratio", 10, "fail if oracle/plan allocs-per-op falls below this")
	)
	flag.Parse()

	res := &Result{GoVersion: runtime.Version()}
	for _, m := range wireMessages() {
		rec, err := benchMessage(m)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchwire:", err)
			os.Exit(1)
		}
		res.Messages = append(res.Messages, *rec)
	}

	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchwire:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	os.Stdout.Write(buf) //nolint:errcheck
	if *out != "-" {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchwire:", err)
			os.Exit(1)
		}
	}

	failed := false
	for _, m := range res.Messages {
		for dir, d := range map[string]Direction{"encode": m.Encode, "decode": m.Decode} {
			if d.AllocRatio < *minRatio {
				fmt.Fprintf(os.Stderr, "FAIL: %s %s alloc ratio %.1fx below the %.0fx floor (plan %.1f vs oracle %.1f allocs/op)\n",
					m.Name, dir, d.AllocRatio, *minRatio, d.PlanAllocs, d.OracleAllocs)
				failed = true
			}
		}
	}
	if *baseline != "" {
		if err := compareBaseline(res, *baseline, *tolerance); err != nil {
			fmt.Fprintln(os.Stderr, "FAIL:", err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// wireMsg is one message to benchmark: a value to encode and a
// factory for decode destinations.
type wireMsg struct {
	name string
	val  any
	mk   func() any
}

// wireMessages returns representative instances of the three
// handshake-path messages, shaped like real mainnet traffic.
func wireMessages() []wireMsg {
	return []wireMsg{
		{
			name: "hello",
			val: &devp2p.Hello{
				Version:    devp2p.Version,
				Name:       "Geth/v1.8.11-stable/linux-amd64/go1.10",
				Caps:       []devp2p.Cap{{Name: "eth", Version: 62}, {Name: "eth", Version: 63}},
				ListenPort: 30303,
				ID:         enode.ID{0x41, 0x76, 0x02},
			},
			mk: func() any { return new(devp2p.Hello) },
		},
		{
			name: "status",
			val: &eth.Status{
				ProtocolVersion: uint32(eth.Version63),
				NetworkID:       1,
				TD:              new(big.Int).SetBytes([]byte{0x02, 0x3c, 0x91, 0xd7, 0xbb, 0x2e, 0x8f, 0x41, 0x55, 0xaa}),
				BestHash:        chain.Hash{0x7d, 0x5a},
				GenesisHash:     chain.Hash{0xd4, 0xe5},
			},
			mk: func() any { return new(eth.Status) },
		},
		{
			name: "discv4-ping",
			val: &discv4.Ping{
				Version:    discv4.Version,
				From:       discv4.Endpoint{IP: net.IP{10, 3, 58, 6}, UDP: 30303, TCP: 30303},
				To:         discv4.Endpoint{IP: net.IP{192, 168, 1, 1}, UDP: 30303, TCP: 30303},
				Expiration: 1526987786,
			},
			mk: func() any { return new(discv4.Ping) },
		},
	}
}

func benchMessage(m wireMsg) (*Message, error) {
	enc, err := rlp.EncodeToBytes(m.val)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", m.name, err)
	}
	// Sanity: the two backends must agree byte-for-byte before their
	// performance is compared.
	oenc, err := rlp.OracleEncodeToBytes(m.val)
	if err != nil {
		return nil, fmt.Errorf("%s oracle: %w", m.name, err)
	}
	if string(enc) != string(oenc) {
		return nil, fmt.Errorf("%s: plan and oracle encodings diverge", m.name)
	}

	rec := &Message{Name: m.name, Bytes: len(enc)}
	rec.Encode = direction(
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rlp.EncodeToBytes(m.val); err != nil {
					b.Fatal(err)
				}
			}
		},
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rlp.OracleEncodeToBytes(m.val); err != nil {
					b.Fatal(err)
				}
			}
		},
	)
	dst, odst := m.mk(), m.mk()
	rec.Decode = direction(
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := rlp.DecodeBytes(enc, dst); err != nil {
					b.Fatal(err)
				}
			}
		},
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := rlp.OracleDecodeBytes(enc, odst); err != nil {
					b.Fatal(err)
				}
			}
		},
	)
	return rec, nil
}

// direction runs the plan and oracle benchmark closures and derives
// the comparison figures.
func direction(plan, oracle func(*testing.B)) Direction {
	pr := testing.Benchmark(plan)
	or := testing.Benchmark(oracle)
	d := Direction{
		PlanNsOp:     float64(pr.NsPerOp()),
		PlanAllocs:   float64(pr.AllocsPerOp()),
		OracleNsOp:   float64(or.NsPerOp()),
		OracleAllocs: float64(or.AllocsPerOp()),
	}
	// A fully allocation-free direction would divide by zero; report
	// the oracle count as the ratio floor in that case.
	if d.PlanAllocs > 0 {
		d.AllocRatio = d.OracleAllocs / d.PlanAllocs
	} else {
		d.AllocRatio = d.OracleAllocs
	}
	if d.PlanNsOp > 0 {
		d.SpeedupX = d.OracleNsOp / d.PlanNsOp
	}
	return d
}

// compareBaseline fails on plan-path ns/op regressions beyond tol,
// and nudges toward a baseline refresh on improvements beyond it.
func compareBaseline(res *Result, path string, tol float64) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base Result
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	byName := make(map[string]Message, len(base.Messages))
	for _, m := range base.Messages {
		byName[m.Name] = m
	}
	for _, m := range res.Messages {
		bm, ok := byName[m.Name]
		if !ok {
			continue
		}
		for dir, pair := range map[string][2]float64{
			"encode": {m.Encode.PlanNsOp, bm.Encode.PlanNsOp},
			"decode": {m.Decode.PlanNsOp, bm.Decode.PlanNsOp},
		} {
			got, want := pair[0], pair[1]
			if want <= 0 {
				continue
			}
			ratio := got / want
			switch {
			case ratio > 1+tol:
				return fmt.Errorf("%s %s: %.0f ns/op is %.0f%% above baseline %.0f (tolerance %.0f%%)",
					m.Name, dir, got, (ratio-1)*100, want, tol*100)
			case ratio < 1-tol:
				fmt.Fprintf(os.Stderr, "note: %s %s %.0f ns/op beats baseline %.0f by %.0f%% — refresh BENCH_wire.json\n",
					m.Name, dir, got, want, (1-ratio)*100)
			}
		}
	}
	return nil
}
