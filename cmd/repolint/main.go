// Command repolint runs the repository's custom invariant analyzers
// (internal/lint) over every package in the module and exits non-zero
// if any unsuppressed finding remains.
//
// Usage:
//
//	go run ./cmd/repolint [flags] ./...
//
// The package pattern argument is accepted for familiarity; the tool
// always lints the whole module containing the working directory.
//
// Flags:
//
//	-v            print analyzer docs and progress to stderr
//	-json         render findings as a JSON array instead of text
//	-annotations  render findings as GitHub Actions ::error commands,
//	              so CI surfaces them inline on the PR diff
//	-cache        reuse the previous run's findings when no source
//	              file changed (content-hash keyed; see internal/lint
//	              cache.go for why reuse is all-or-nothing)
//	-list         print every analyzer name with its one-line doc and
//	              exit without linting
//	-only NAME    run a single analyzer by name. Suppression-hygiene
//	              findings (stale or malformed //lint:ignore) are
//	              withheld — directives for the other analyzers would
//	              look stale — and the cache is bypassed so a partial
//	              run never clobbers the full-run cache file.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

// cacheName is the per-module cache file, kept beside go.mod and
// ignored by git.
const cacheName = ".repolint.cache"

func main() {
	verbose := flag.Bool("v", false, "print analyzer docs and per-analyzer finding counts")
	jsonOut := flag.Bool("json", false, "render findings as JSON")
	annotations := flag.Bool("annotations", false, "render findings as GitHub Actions error annotations")
	useCache := flag.Bool("cache", false, "reuse previous findings when no source file changed")
	list := flag.Bool("list", false, "list analyzer names and docs, then exit")
	only := flag.String("only", "", "run a single analyzer by name (bypasses the cache)")
	flag.Parse()

	root, modulePath, err := lint.ModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(2)
	}
	loader := lint.NewLoader(root, modulePath)
	analyzers := lint.RepoAnalyzers(modulePath)

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-13s %s\n", a.Name(), a.Doc())
		}
		return
	}
	onlyRun := *only != ""
	if onlyRun {
		var picked []lint.Analyzer
		for _, a := range analyzers {
			if a.Name() == *only {
				picked = append(picked, a)
			}
		}
		if len(picked) == 0 {
			fmt.Fprintf(os.Stderr, "repolint: no analyzer named %q; run with -list to see them\n", *only)
			os.Exit(2)
		}
		analyzers = picked
		// A single-analyzer run would mis-key the shared cache file and
		// mistake every other analyzer's directives for stale ones, so
		// the cache is skipped and hygiene findings are withheld below.
		*useCache = false
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "repolint: %d analyzers\n", len(analyzers))
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-13s %s\n", a.Name(), a.Doc())
		}
	}

	config := lint.CacheConfig(modulePath, analyzers)
	cachePath := filepath.Join(root, cacheName)

	var findings []lint.Finding
	cached := false
	var digests map[string]string
	if *useCache {
		digests, err = lint.DigestPackages(loader)
		if err != nil {
			fmt.Fprintln(os.Stderr, "repolint: cache disabled:", err)
			digests = nil
		} else if prev := lint.LoadCache(cachePath); prev != nil {
			hits, total, ok := prev.Hits(config, digests)
			if ok {
				findings = prev.Findings
				cached = true
				fmt.Fprintf(os.Stderr, "repolint: cache hit: %d/%d packages unchanged, reusing previous findings\n", hits, total)
			} else {
				// The analyzers are interprocedural, so one changed
				// package can move findings in unchanged ones: any miss
				// re-analyzes the whole module.
				fmt.Fprintf(os.Stderr, "repolint: cache miss: %d/%d packages unchanged, re-analyzing module\n", hits, total)
			}
		} else {
			fmt.Fprintln(os.Stderr, "repolint: cache cold, analyzing module")
		}
	}

	if !cached {
		pkgs, err := loader.LoadAll()
		if err != nil {
			fmt.Fprintln(os.Stderr, "repolint:", err)
			os.Exit(2)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "repolint: %d packages loaded\n", len(pkgs))
		}
		findings = lint.Run(loader, pkgs, analyzers)
		if onlyRun {
			// Directives naming the analyzers we did not run would all
			// read as unknown or stale; hygiene checks need a full run.
			kept := findings[:0]
			for _, f := range findings {
				if f.Analyzer != "lint" {
					kept = append(kept, f)
				}
			}
			findings = kept
		}
		for i := range findings {
			findings[i].Pos.Filename = loader.RelPath(findings[i].Pos.Filename)
		}
		if digests != nil {
			if err := lint.SaveCache(cachePath, config, digests, findings); err != nil {
				fmt.Fprintln(os.Stderr, "repolint: cache not saved:", err)
			}
		}
	}

	switch {
	case *jsonOut:
		if err := lint.WriteJSON(os.Stdout, findings); err != nil {
			fmt.Fprintln(os.Stderr, "repolint:", err)
			os.Exit(2)
		}
	case *annotations:
		if err := lint.WriteAnnotations(os.Stdout, findings); err != nil {
			fmt.Fprintln(os.Stderr, "repolint:", err)
			os.Exit(2)
		}
	default:
		for _, f := range findings {
			fmt.Println(f.String())
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
