// Command repolint runs the repository's custom invariant analyzers
// (internal/lint) over every package in the module and exits non-zero
// if any unsuppressed finding remains.
//
// Usage:
//
//	go run ./cmd/repolint [flags] ./...
//
// The package pattern argument is accepted for familiarity; the tool
// always lints the whole module containing the working directory.
//
// Flags:
//
//	-v            print analyzer docs and progress to stderr
//	-json         render findings as a JSON array instead of text
//	-annotations  render findings as GitHub Actions ::error commands,
//	              so CI surfaces them inline on the PR diff
//	-sarif        render findings as a SARIF 2.1.0 log for GitHub
//	              code-scanning upload
//	-cache        reuse the previous run's findings when no source
//	              file changed (content-hash keyed; see internal/lint
//	              cache.go for why reuse is all-or-nothing)
//	-cache-file PATH
//	              read/write the cache at PATH instead of
//	              .repolint.cache beside go.mod (benchmarks and tests
//	              point this at a scratch file so they never touch the
//	              developer's warm cache)
//	-list         print every analyzer name with its one-line doc and
//	              exit without linting
//	-only NAME    run a single analyzer by name. Suppression-hygiene
//	              findings (stale or malformed //lint:ignore) are
//	              withheld — directives for the other analyzers would
//	              look stale — and the cache is bypassed so a partial
//	              run never clobbers the full-run cache file.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

// cacheName is the default per-module cache file, kept beside go.mod
// and ignored by git.
const cacheName = ".repolint.cache"

func main() {
	os.Exit(runMain(os.Args[1:], os.Stdout, os.Stderr))
}

// runMain is the whole tool behind a testable seam: flags in, exit
// code out, every byte of output through the supplied writers.
func runMain(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("repolint", flag.ContinueOnError)
	flags.SetOutput(stderr)
	verbose := flags.Bool("v", false, "print analyzer docs and per-analyzer finding counts")
	jsonOut := flags.Bool("json", false, "render findings as JSON")
	annotations := flags.Bool("annotations", false, "render findings as GitHub Actions error annotations")
	sarif := flags.Bool("sarif", false, "render findings as a SARIF 2.1.0 log")
	useCache := flags.Bool("cache", false, "reuse previous findings when no source file changed")
	cacheFile := flags.String("cache-file", "", "cache file path (default .repolint.cache beside go.mod)")
	list := flags.Bool("list", false, "list analyzer names and docs, then exit")
	only := flags.String("only", "", "run a single analyzer by name (bypasses the cache)")
	if err := flags.Parse(args); err != nil {
		return 2
	}

	root, modulePath, err := lint.ModuleRoot(".")
	if err != nil {
		fmt.Fprintln(stderr, "repolint:", err)
		return 2
	}
	loader := lint.NewLoader(root, modulePath)
	analyzers := lint.RepoAnalyzers(modulePath)

	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-13s %s\n", a.Name(), a.Doc())
		}
		return 0
	}
	onlyRun := *only != ""
	if onlyRun {
		var picked []lint.Analyzer
		for _, a := range analyzers {
			if a.Name() == *only {
				picked = append(picked, a)
			}
		}
		if len(picked) == 0 {
			fmt.Fprintf(stderr, "repolint: no analyzer named %q; run with -list to see them\n", *only)
			return 2
		}
		analyzers = picked
		// A single-analyzer run would mis-key the shared cache file and
		// mistake every other analyzer's directives for stale ones, so
		// the cache is skipped and hygiene findings are withheld below.
		*useCache = false
	}
	if *verbose {
		fmt.Fprintf(stderr, "repolint: %d analyzers\n", len(analyzers))
		for _, a := range analyzers {
			fmt.Fprintf(stderr, "  %-13s %s\n", a.Name(), a.Doc())
		}
	}

	config := lint.CacheConfig(modulePath, analyzers)
	cachePath := *cacheFile
	if cachePath == "" {
		cachePath = filepath.Join(root, cacheName)
	}

	var findings []lint.Finding
	cached := false
	var digests map[string]string
	if *useCache {
		digests, err = lint.DigestPackages(loader)
		if err != nil {
			fmt.Fprintln(stderr, "repolint: cache disabled:", err)
			digests = nil
		} else if prev := lint.LoadCache(cachePath); prev != nil {
			hits, total, ok := prev.Hits(config, digests)
			if ok {
				findings = prev.Findings
				cached = true
				fmt.Fprintf(stderr, "repolint: cache hit: %d/%d packages unchanged, reusing previous findings\n", hits, total)
			} else {
				// The analyzers are interprocedural, so one changed
				// package can move findings in unchanged ones: any miss
				// re-analyzes the whole module.
				fmt.Fprintf(stderr, "repolint: cache miss: %d/%d packages unchanged, re-analyzing module\n", hits, total)
			}
		} else {
			fmt.Fprintln(stderr, "repolint: cache cold, analyzing module")
		}
	}

	if !cached {
		pkgs, err := loader.LoadAll()
		if err != nil {
			fmt.Fprintln(stderr, "repolint:", err)
			return 2
		}
		if *verbose {
			fmt.Fprintf(stderr, "repolint: %d packages loaded\n", len(pkgs))
		}
		findings = lint.Run(loader, pkgs, analyzers)
		if onlyRun {
			// Directives naming the analyzers we did not run would all
			// read as unknown or stale; hygiene checks need a full run.
			kept := findings[:0]
			for _, f := range findings {
				if f.Analyzer != "lint" {
					kept = append(kept, f)
				}
			}
			findings = kept
		}
		for i := range findings {
			findings[i].Pos.Filename = loader.RelPath(findings[i].Pos.Filename)
		}
		if digests != nil {
			if err := lint.SaveCache(cachePath, config, digests, findings); err != nil {
				fmt.Fprintln(stderr, "repolint: cache not saved:", err)
			}
		}
	}

	switch {
	case *jsonOut:
		if err := lint.WriteJSON(stdout, findings); err != nil {
			fmt.Fprintln(stderr, "repolint:", err)
			return 2
		}
	case *annotations:
		if err := lint.WriteAnnotations(stdout, findings); err != nil {
			fmt.Fprintln(stderr, "repolint:", err)
			return 2
		}
	case *sarif:
		if err := lint.WriteSARIF(stdout, analyzers, findings); err != nil {
			fmt.Fprintln(stderr, "repolint:", err)
			return 2
		}
	default:
		for _, f := range findings {
			fmt.Fprintln(stdout, f.String())
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "repolint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
