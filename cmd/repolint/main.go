// Command repolint runs the repository's custom invariant analyzers
// (internal/lint) over every package in the module and exits non-zero
// if any unsuppressed finding remains.
//
// Usage:
//
//	go run ./cmd/repolint ./...
//
// The package pattern argument is accepted for familiarity; the tool
// always lints the whole module containing the working directory.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	verbose := flag.Bool("v", false, "print analyzer docs and per-analyzer finding counts")
	flag.Parse()

	root, modulePath, err := lint.ModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(2)
	}
	loader := lint.NewLoader(root, modulePath)
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(2)
	}
	analyzers := lint.RepoAnalyzers(modulePath)
	if *verbose {
		fmt.Fprintf(os.Stderr, "repolint: %d packages, %d analyzers\n", len(pkgs), len(analyzers))
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name(), a.Doc())
		}
	}
	findings := lint.Run(loader, pkgs, analyzers)
	for _, f := range findings {
		rel := f
		rel.Pos.Filename = loader.RelPath(f.Pos.Filename)
		fmt.Println(rel.String())
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
