package main

import (
	"go/token"
	"os"
	"strings"
	"testing"

	"repro/internal/lint"
)

// poisonCache writes a cache file at path that a `-cache` run over the
// current, unmodified repository would accept: real per-package
// digests, the real analyzer config, and one fabricated finding that
// no analyzer would ever produce.
func poisonCache(t *testing.T, path string) {
	t.Helper()
	root, modulePath, err := lint.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	digests, err := lint.DigestPackages(lint.NewLoader(root, modulePath))
	if err != nil {
		t.Fatal(err)
	}
	config := lint.CacheConfig(modulePath, lint.RepoAnalyzers(modulePath))
	poisoned := []lint.Finding{{
		Pos:      token.Position{Filename: "internal/poison/poison.go", Line: 1, Column: 1},
		Analyzer: "wiretaint",
		Message:  "poisoned cache entry",
	}}
	if err := lint.SaveCache(path, config, digests, poisoned); err != nil {
		t.Fatal(err)
	}
}

// TestOnlyBypassesCache pins the -only/-cache interaction end to end:
// a cache file a full `-cache` run replays verbatim is ignored by an
// `-only` run, which re-analyzes from source and neither reads nor
// clobbers the cache file. The control run doubles as the -cache-file
// read-path test: the hit comes from the supplied path, not the
// default .repolint.cache beside go.mod.
func TestOnlyBypassesCache(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and analyzes the whole module")
	}
	cachePath := t.TempDir() + "/poisoned.cache"
	poisonCache(t, cachePath)
	before, err := os.ReadFile(cachePath)
	if err != nil {
		t.Fatal(err)
	}

	// Control: a full cached run must replay the poisoned findings.
	var stdout, stderr strings.Builder
	code := runMain([]string{"-cache", "-cache-file", cachePath}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("poisoned cached run: exit %d, want 1\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "cache hit") {
		t.Fatalf("poisoned cache was not replayed; the control is invalid\nstderr: %s", stderr.String())
	}
	if !strings.Contains(stdout.String(), "poisoned cache entry") {
		t.Fatalf("cache hit did not echo the poisoned finding\nstdout: %s", stdout.String())
	}

	// The -only run must bypass that same cache entirely.
	stdout.Reset()
	stderr.Reset()
	code = runMain([]string{"-only", "wiretaint", "-cache", "-cache-file", cachePath}, &stdout, &stderr)
	if strings.Contains(stderr.String(), "cache hit") {
		t.Errorf("-only run reported a cache hit\nstderr: %s", stderr.String())
	}
	if strings.Contains(stdout.String(), "poisoned cache entry") {
		t.Errorf("-only run replayed the poisoned finding\nstdout: %s", stdout.String())
	}
	if code != 0 {
		t.Errorf("-only wiretaint over the clean repo: exit %d, want 0\nstdout: %s\nstderr: %s",
			code, stdout.String(), stderr.String())
	}

	// A partial run must never clobber the full-run cache file.
	after, err := os.ReadFile(cachePath)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Error("-only run rewrote the cache file")
	}
}
